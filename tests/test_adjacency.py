"""Tests for the CSR adjacency structure."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import GraphError, NotConnectedError
from repro.graphs.adjacency import Adjacency


class TestConstruction:
    def test_cycle_basic_counts(self, cycle6_adjacency):
        assert cycle6_adjacency.n == 6
        assert cycle6_adjacency.m == 6
        assert cycle6_adjacency.num_directed_edges == 12

    def test_degrees_cycle(self, cycle6_adjacency):
        assert np.array_equal(cycle6_adjacency.degrees, np.full(6, 2))

    def test_neighbors_sorted(self, small_regular):
        adjacency = Adjacency.from_graph(small_regular)
        for u in range(adjacency.n):
            row = adjacency.neighbors_of(u)
            assert np.all(np.diff(row) > 0)

    def test_neighbors_match_networkx(self, petersen):
        adjacency = Adjacency.from_graph(petersen)
        for u in range(10):
            expected = sorted(petersen.neighbors(u))
            assert adjacency.neighbors_of(u).tolist() == expected

    def test_star_degrees(self, star5):
        adjacency = Adjacency.from_graph(star5)
        assert adjacency.d_max == 5
        assert adjacency.d_min == 1
        assert not adjacency.is_regular

    def test_rejects_disconnected(self):
        graph = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(NotConnectedError):
            Adjacency.from_graph(graph)

    def test_disconnected_allowed_when_not_required(self):
        graph = nx.Graph([(0, 1), (2, 3)])
        adjacency = Adjacency.from_graph(graph, require_connected=False)
        assert adjacency.n == 4

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            Adjacency.from_graph(nx.Graph())

    def test_rejects_self_loops(self):
        graph = nx.Graph([(0, 1), (1, 1)])
        with pytest.raises(GraphError):
            Adjacency.from_graph(graph)

    def test_string_labels_relabelled(self):
        graph = nx.Graph([("a", "b"), ("b", "c")])
        adjacency = Adjacency.from_graph(graph)
        assert adjacency.labels == ("a", "b", "c")
        assert adjacency.neighbors_of(1).tolist() == [0, 2]

    def test_integer_labels_numeric_order(self):
        graph = nx.Graph([(10, 2), (2, 1)])
        adjacency = Adjacency.from_graph(graph)
        assert adjacency.labels == (1, 2, 10)


class TestEdgeArrays:
    def test_directed_edges_cover_both_orientations(self, cycle6_adjacency):
        pairs = set(
            zip(cycle6_adjacency.edge_tails.tolist(), cycle6_adjacency.edge_heads.tolist())
        )
        assert (0, 1) in pairs and (1, 0) in pairs
        assert len(pairs) == 12

    def test_tails_heads_are_edges(self, small_regular):
        adjacency = Adjacency.from_graph(small_regular)
        for u, v in zip(adjacency.edge_tails, adjacency.edge_heads):
            assert adjacency.has_edge(int(u), int(v))

    def test_has_edge_negative(self, cycle6_adjacency):
        assert not cycle6_adjacency.has_edge(0, 3)
        assert cycle6_adjacency.has_edge(0, 5)


class TestDerivedQuantities:
    def test_stationary_pi_sums_to_one(self, star5):
        adjacency = Adjacency.from_graph(star5)
        pi = adjacency.stationary_pi()
        assert pi.sum() == pytest.approx(1.0)

    def test_stationary_pi_degree_proportional(self, star5):
        adjacency = Adjacency.from_graph(star5)
        pi = adjacency.stationary_pi()
        assert pi[0] == pytest.approx(5 / 10)
        assert pi[1] == pytest.approx(1 / 10)

    def test_degree_property_regular(self, cycle6_adjacency):
        assert cycle6_adjacency.degree == 2

    def test_degree_property_irregular_raises(self, star5):
        adjacency = Adjacency.from_graph(star5)
        with pytest.raises(GraphError):
            _ = adjacency.degree

    def test_roundtrip_networkx(self, petersen):
        adjacency = Adjacency.from_graph(petersen)
        rebuilt = adjacency.to_networkx()
        assert nx.is_isomorphic(rebuilt, petersen)
        assert sorted(rebuilt.edges()) == sorted(
            (min(u, v), max(u, v)) for u, v in petersen.edges()
        )

    def test_equality(self, cycle6):
        a = Adjacency.from_graph(cycle6)
        b = Adjacency.from_graph(nx.cycle_graph(6))
        assert a == b

    def test_inequality(self, cycle6, petersen):
        assert Adjacency.from_graph(cycle6) != Adjacency.from_graph(petersen)
