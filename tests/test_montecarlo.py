"""Tests for the Monte-Carlo harness and moment estimation."""

import numpy as np
import pytest

from repro.core.node_model import NodeModel
from repro.exceptions import ParameterError
from repro.sim.montecarlo import (
    estimate_moments,
    replicate,
    sample_f_values,
    sample_t_eps,
)


class TestReplicate:
    def test_runs_requested_count(self, small_regular, rng):
        initial = rng.normal(size=10)
        calls = []

        def make(child):
            calls.append(child)
            return NodeModel(small_regular, initial, alpha=0.5, seed=child)

        outcomes = replicate(make, lambda p: float(p.n), 7, seed=1)
        assert len(outcomes) == 7
        assert len(calls) == 7
        assert np.allclose(outcomes, 10.0)

    def test_reproducible_with_seed(self, small_regular, rng):
        initial = rng.normal(size=10)

        def make(child):
            return NodeModel(small_regular, initial, alpha=0.5, seed=child)

        def run_one(process):
            process.run(100)
            return float(process.values[0])

        a = replicate(make, run_one, 5, seed=42)
        b = replicate(make, run_one, 5, seed=42)
        assert np.allclose(a, b)

    def test_replica_independence(self, small_regular, rng):
        initial = rng.normal(size=10)

        def make(child):
            return NodeModel(small_regular, initial, alpha=0.5, seed=child)

        def run_one(process):
            process.run(200)
            return float(process.values[0])

        outcomes = replicate(make, run_one, 10, seed=3)
        assert len(np.unique(np.round(outcomes, 12))) > 1

    def test_validation(self):
        with pytest.raises(ParameterError):
            replicate(lambda r: None, lambda p: 0.0, 0, seed=1)


class TestSamplers:
    def test_sample_f_values_in_hull(self, small_regular, rng):
        initial = rng.normal(size=10)

        def make(child):
            return NodeModel(small_regular, initial, alpha=0.5, seed=child)

        values = sample_f_values(make, 10, seed=5, discrepancy_tol=1e-7)
        assert np.all(values >= initial.min() - 1e-7)
        assert np.all(values <= initial.max() + 1e-7)

    def test_sample_t_eps_positive(self, small_regular, rng):
        initial = rng.normal(size=10)

        def make(child):
            return NodeModel(small_regular, initial, alpha=0.5, seed=child)

        times = sample_t_eps(make, 1e-6, 6, seed=6)
        assert np.all(times > 0)


class TestEstimateMoments:
    def test_known_sample(self):
        data = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        estimate = estimate_moments(data, seed=1)
        assert estimate.count == 5
        assert estimate.mean == pytest.approx(3.0)
        assert estimate.variance == pytest.approx(2.5)

    def test_gaussian_sample_cis_cover_truth(self):
        rng = np.random.default_rng(7)
        data = rng.normal(2.0, 3.0, size=4_000)
        estimate = estimate_moments(data, seed=2)
        assert estimate.mean_ci[0] <= 2.0 <= estimate.mean_ci[1]
        assert estimate.variance_ci[0] <= 9.0 <= estimate.variance_ci[1]
        assert abs(estimate.skewness) < 0.15
        assert abs(estimate.kurtosis_excess) < 0.3

    def test_skewed_sample_detected(self):
        rng = np.random.default_rng(8)
        data = rng.exponential(1.0, size=4_000)
        estimate = estimate_moments(data, seed=3)
        assert estimate.skewness > 1.0  # exponential skewness = 2

    def test_constant_sample_degenerate(self):
        estimate = estimate_moments(np.full(10, 3.0), seed=4)
        assert estimate.variance == pytest.approx(0.0)
        assert estimate.skewness == 0.0

    def test_ci_width_shrinks_with_confidence(self):
        rng = np.random.default_rng(9)
        data = rng.normal(size=500)
        wide = estimate_moments(data, confidence=0.99, seed=5)
        narrow = estimate_moments(data, confidence=0.8, seed=5)
        assert (wide.variance_ci[1] - wide.variance_ci[0]) > (
            narrow.variance_ci[1] - narrow.variance_ci[0]
        )

    def test_variance_within(self):
        rng = np.random.default_rng(10)
        estimate = estimate_moments(rng.normal(size=200), seed=6)
        assert estimate.variance_within(0.5, 2.0)
        assert not estimate.variance_within(100.0, 200.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            estimate_moments([1.0], seed=1)
        with pytest.raises(ParameterError):
            estimate_moments([1.0, 2.0], confidence=1.5, seed=1)

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(11)
        data = rng.normal(size=100)
        a = estimate_moments(data, seed=12)
        b = estimate_moments(data, seed=12)
        assert a == b
