"""Tests for the baseline dynamics."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines.degroot import DeGrootModel
from repro.baselines.friedkin_johnsen import (
    FriedkinJohnsenModel,
    LimitedInfoFriedkinJohnsen,
)
from repro.baselines.gossip import PairwiseGossip
from repro.baselines.hegselmann_krause import HegselmannKrauseModel
from repro.baselines.load_balancing import SynchronousDiffusion, diffusion_matrix
from repro.baselines.pushsum import PushSum
from repro.baselines.voter import VoterModel, win_probabilities
from repro.exceptions import ConvergenceError, ParameterError


class TestVoterModel:
    def test_reaches_consensus(self, small_regular):
        opinions = list(range(10))
        voter = VoterModel(small_regular, opinions, seed=1)
        winner, steps = voter.run_to_consensus()
        assert winner in opinions
        assert steps > 0
        assert voter.num_distinct == 1

    def test_winner_is_an_initial_opinion(self, petersen):
        voter = VoterModel(petersen, [5] * 5 + [9] * 5, seed=2)
        winner, _ = voter.run_to_consensus()
        assert winner in (5, 9)

    def test_consensus_detection_immediate(self, triangle):
        voter = VoterModel(triangle, [1, 1, 1], seed=3)
        winner, steps = voter.run_to_consensus()
        assert winner == 1 and steps == 0

    def test_budget_raises(self, petersen):
        voter = VoterModel(petersen, list(range(10)), seed=4)
        with pytest.raises(ConvergenceError):
            voter.run_to_consensus(max_steps=1)

    def test_win_probabilities_degree_weighted(self, star5):
        probabilities = win_probabilities(star5)
        assert probabilities[0] == pytest.approx(0.5)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_win_probability_empirical(self):
        """On a star the hub's opinion wins with probability ~1/2."""
        graph = nx.star_graph(5)
        hub_wins = 0
        trials = 800
        for s in range(trials):
            voter = VoterModel(graph, [1, 0, 0, 0, 0, 0], seed=s)
            winner, _ = voter.run_to_consensus()
            hub_wins += winner
        assert hub_wins / trials == pytest.approx(0.5, abs=0.06)

    def test_shape_validation(self, triangle):
        with pytest.raises(ParameterError):
            VoterModel(triangle, [1, 2], seed=0)


class TestPairwiseGossip:
    def test_average_exactly_preserved(self, small_regular, rng):
        initial = rng.normal(size=10)
        gossip = PairwiseGossip(small_regular, initial, seed=1)
        average = gossip.average
        gossip.run(10_000)
        assert gossip.average == pytest.approx(average, abs=1e-10)

    def test_consensus_value_is_initial_average(self, small_regular, rng):
        initial = rng.normal(size=10)
        gossip = PairwiseGossip(small_regular, initial, seed=2)
        value, steps = gossip.run_to_consensus(discrepancy_tol=1e-10)
        assert value == pytest.approx(float(initial.mean()), abs=1e-9)
        assert steps > 0

    def test_phi_decreases(self, small_regular, rng):
        gossip = PairwiseGossip(small_regular, rng.normal(size=10), seed=3)
        phi0 = gossip.phi
        gossip.run(5_000)
        assert gossip.phi < phi0 * 1e-6

    def test_pair_moves_to_midpoint(self, triangle):
        gossip = PairwiseGossip(triangle, [0.0, 6.0, 12.0], seed=4)
        before = gossip.values.copy()
        gossip.step()
        changed = np.flatnonzero(gossip.values != before)
        assert len(changed) in (0, 2)  # 0 if the pair already agreed
        if len(changed) == 2:
            u, v = changed
            assert gossip.values[u] == gossip.values[v]
            assert gossip.values[u] == pytest.approx(
                (before[u] + before[v]) / 2
            )


class TestDeGroot:
    def test_converges_to_degree_weighted_average(self, star5, rng):
        initial = rng.normal(size=6)
        model = DeGrootModel(star5, initial, lazy=True)
        value, _ = model.run_to_consensus(discrepancy_tol=1e-12)
        from repro.graphs.spectral import stationary_distribution

        pi = stationary_distribution(star5)
        assert value == pytest.approx(float(np.sum(pi * initial)), abs=1e-9)

    def test_fixed_point_prediction(self, star5, rng):
        initial = rng.normal(size=6)
        model = DeGrootModel(star5, initial, lazy=True)
        predicted = model.fixed_point()
        value, _ = model.run_to_consensus(discrepancy_tol=1e-12)
        assert value == pytest.approx(predicted, abs=1e-8)

    def test_deterministic(self, petersen, rng):
        initial = rng.normal(size=10)
        a = DeGrootModel(petersen, initial)
        b = DeGrootModel(petersen, initial)
        a.run(10)
        b.run(10)
        assert np.allclose(a.values, b.values)

    def test_weights_validation(self, triangle):
        bad = np.array([[0.5, 0.2, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        with pytest.raises(ParameterError):
            DeGrootModel(triangle, [1.0, 2.0, 3.0], weights=bad)


class TestFriedkinJohnsen:
    def test_fixed_point_is_stable(self, petersen, rng):
        private = rng.normal(size=10)
        model = FriedkinJohnsenModel(petersen, private, susceptibility=0.6)
        model.values = model.fixed_point()
        before = model.values.copy()
        model.step()
        assert np.allclose(model.values, before, atol=1e-12)

    def test_iteration_converges_to_fixed_point(self, petersen, rng):
        private = rng.normal(size=10)
        model = FriedkinJohnsenModel(petersen, private, susceptibility=0.6)
        model.run(200)
        assert model.distance_to_fixed_point() < 1e-9

    def test_zero_susceptibility_keeps_private(self, petersen, rng):
        private = rng.normal(size=10)
        model = FriedkinJohnsenModel(petersen, private, susceptibility=0.0)
        model.run(5)
        assert np.allclose(model.values, private)

    def test_limited_info_tracks_fj_fixed_point(self, petersen, rng):
        """The randomized k-sample variant's empirical mean state converges
        near the synchronous FJ equilibrium (Fotakis et al.)."""
        private = rng.normal(size=10)
        target = LimitedInfoFriedkinJohnsen(
            petersen, private, susceptibility=0.5, k=2, seed=1
        ).expected_fixed_point()
        replicas = 300
        total = np.zeros(10)
        for s in range(replicas):
            model = LimitedInfoFriedkinJohnsen(
                petersen, private, susceptibility=0.5, k=2, seed=s
            )
            model.run(2_000)
            total += model.values
        assert np.allclose(total / replicas, target, atol=0.1)

    def test_limited_info_validation(self, star5):
        with pytest.raises(ParameterError):
            LimitedInfoFriedkinJohnsen(star5, np.zeros(6), k=2)


class TestHegselmannKrause:
    def test_full_confidence_reaches_consensus(self, petersen, rng):
        initial = rng.uniform(0, 1, size=10)
        model = HegselmannKrauseModel(petersen, initial, confidence=10.0)
        model.run_until_stable()
        assert len(model.clusters()) == 1

    def test_tiny_confidence_freezes(self, petersen):
        initial = np.arange(10.0) * 100.0
        model = HegselmannKrauseModel(petersen, initial, confidence=1e-6)
        moved = model.step()
        assert not moved
        assert np.allclose(model.values, initial)

    def test_fragmentation_on_path(self):
        """Two far-apart opinion camps on a path stay separate clusters."""
        graph = nx.path_graph(10)
        initial = np.array([0.0] * 5 + [10.0] * 5)
        model = HegselmannKrauseModel(graph, initial, confidence=1.0)
        model.run_until_stable()
        clusters = model.clusters()
        assert len(clusters) == 2

    def test_validation(self, triangle):
        with pytest.raises(ParameterError):
            HegselmannKrauseModel(triangle, [0.0] * 3, confidence=0.0)


class TestSynchronousDiffusion:
    def test_matrix_doubly_stochastic(self, star5):
        p = diffusion_matrix(star5)
        assert np.allclose(p.sum(axis=0), 1.0)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)

    def test_average_preserved_exactly(self, star5, rng):
        initial = rng.normal(size=6)
        model = SynchronousDiffusion(star5, initial)
        average = model.average
        model.run(100)
        assert model.average == pytest.approx(average, abs=1e-12)

    def test_converges_to_simple_average(self, petersen, rng):
        initial = rng.normal(size=10)
        model = SynchronousDiffusion(petersen, initial)
        value, _ = model.run_to_consensus(discrepancy_tol=1e-10)
        assert value == pytest.approx(float(initial.mean()), abs=1e-9)

    def test_rate_bound_below_one(self, petersen):
        model = SynchronousDiffusion(petersen, np.zeros(10))
        assert 0.0 < model.convergence_rate_bound() < 1.0


class TestPushSum:
    def test_mass_conservation(self, petersen, rng):
        initial = rng.normal(size=10)
        model = PushSum(petersen, initial, seed=1)
        model.run(5_000)
        assert model.sums.sum() == pytest.approx(float(initial.sum()), abs=1e-9)
        assert model.weights.sum() == pytest.approx(10.0, abs=1e-9)

    def test_estimates_converge_to_exact_average(self, petersen, rng):
        initial = rng.normal(size=10)
        model = PushSum(petersen, initial, seed=2)
        value, steps = model.run_to_accuracy(tol=1e-10)
        assert value == pytest.approx(float(initial.mean()), abs=1e-9)
        assert np.allclose(model.estimates, initial.mean(), atol=1e-9)
        assert steps > 0

    def test_weights_stay_positive(self, petersen, rng):
        model = PushSum(petersen, rng.normal(size=10), seed=3)
        model.run(20_000)
        assert np.all(model.weights > 0)

    def test_validation(self, triangle):
        with pytest.raises(ParameterError):
            PushSum(triangle, [0.0, 1.0], seed=0)
        model = PushSum(triangle, [0.0, 1.0, 2.0], seed=0)
        with pytest.raises(ParameterError):
            model.run_to_accuracy(tol=0.0)
