"""Property-based tests (hypothesis) on core invariants."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.node_model import NodeModel
from repro.core.edge_model import EdgeModel
from repro.core.potentials import PotentialTracker, phi_pi, phi_pi_pairwise, phi_uniform
from repro.core.schedule import Schedule
from repro.dual.duality import run_coupled, verify_duality
from repro.dual.matrices import (
    averaging_step_matrix,
    diffusion_step_matrix,
    is_stochastic,
)
from repro.dual.qchain import mu_closed_form
from repro.graphs.adjacency import Adjacency


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def values_and_weights(draw, max_n=12):
    n = draw(st.integers(min_value=2, max_value=max_n))
    values = draw(
        st.lists(finite_floats, min_size=n, max_size=n).map(np.array)
    )
    raw = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=n,
            max_size=n,
        ).map(np.array)
    )
    return values, raw / raw.sum()


@st.composite
def connected_graph(draw, max_n=10):
    """A small connected graph: random tree plus random extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        graph.add_edge(parent, v)
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(u, v)
    return graph


class TestPotentialProperties:
    @given(values_and_weights())
    def test_phi_nonnegative(self, pair):
        values, pi = pair
        assert phi_pi(pi, values) >= 0.0

    @given(values_and_weights())
    def test_phi_matches_pairwise(self, pair):
        values, pi = pair
        a = phi_pi(pi, values)
        b = phi_pi_pairwise(pi, values)
        scale = max(1.0, float(np.max(np.abs(values))) ** 2)
        assert abs(a - b) <= 1e-9 * scale

    @given(values_and_weights(), st.floats(min_value=-100, max_value=100))
    def test_phi_shift_invariant(self, pair, shift):
        values, pi = pair
        scale = max(1.0, float(np.max(np.abs(values))) ** 2, shift**2)
        assert abs(phi_pi(pi, values + shift) - phi_pi(pi, values)) <= 1e-7 * scale

    @given(values_and_weights())
    def test_zero_iff_constant(self, pair):
        values, pi = pair
        constant = np.full(len(values), 7.7)
        assert phi_pi(pi, constant) <= 1e-12  # float residue only
        if np.max(values) - np.min(values) > 1e-6:
            assert phi_pi(pi, values) > 0.0

    @given(values_and_weights())
    def test_phi_uniform_vs_phi_pi(self, pair):
        values, _ = pair
        n = len(values)
        uniform = np.full(n, 1.0 / n)
        # phi_uniform = n * phi with uniform weights.
        scale = max(1.0, float(np.max(np.abs(values))) ** 2) * n
        assert abs(phi_uniform(values) - n * phi_pi(uniform, values)) <= 1e-8 * scale


class TestTrackerProperties:
    @given(
        values_and_weights(),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=11),
                st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            ),
            max_size=40,
        ),
    )
    def test_tracker_tracks_arbitrary_updates(self, pair, updates):
        values, pi = pair
        tracker = PotentialTracker(pi, values)
        work = values.astype(float).copy()
        # The incremental error scales with the largest magnitude ever
        # held, not just the final state.
        scale = max(1.0, float(np.max(np.abs(values))) ** 2)
        for node, new in updates:
            node = node % len(work)
            old = float(work[node])
            work[node] = new
            tracker.update(node, old, new, work)
            scale = max(scale, new * new)
        assert abs(tracker.phi - phi_pi(pi, work)) <= 1e-8 * scale


class TestStepMatrixProperties:
    @given(
        st.integers(min_value=2, max_value=10),
        st.floats(min_value=0.0, max_value=0.99),
        st.data(),
    )
    def test_b_column_stochastic_f_row_stochastic(self, n, alpha, data):
        node = data.draw(st.integers(min_value=0, max_value=n - 1))
        others = [i for i in range(n) if i != node]
        k = data.draw(st.integers(min_value=1, max_value=len(others)))
        sample = tuple(data.draw(st.permutations(others))[:k])
        from repro.core.schedule import SelectionStep

        step = SelectionStep(node, sample)
        b = diffusion_step_matrix(n, step, alpha)
        f = averaging_step_matrix(n, step, alpha)
        assert is_stochastic(b, axis=0, atol=1e-9)
        assert is_stochastic(f, axis=1, atol=1e-9)


class TestProcessProperties:
    @settings(max_examples=25, deadline=None)
    @given(connected_graph(), st.floats(min_value=0.0, max_value=0.9), st.data())
    def test_hull_and_discrepancy_invariants(self, graph, alpha, data):
        n = graph.number_of_nodes()
        initial = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=-100, max_value=100, allow_nan=False),
                    min_size=n,
                    max_size=n,
                )
            )
        )
        process = NodeModel(graph, initial, alpha=alpha, k=1, seed=0)
        spread0 = process.discrepancy
        process.run(200)
        assert process.values.min() >= initial.min() - 1e-9
        assert process.values.max() <= initial.max() + 1e-9
        assert process.discrepancy <= spread0 + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(connected_graph(), st.data())
    def test_edge_model_hull(self, graph, data):
        n = graph.number_of_nodes()
        initial = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=-100, max_value=100, allow_nan=False),
                    min_size=n,
                    max_size=n,
                )
            )
        )
        process = EdgeModel(graph, initial, alpha=0.5, seed=1)
        process.run(200)
        assert process.values.min() >= initial.min() - 1e-9
        assert process.values.max() <= initial.max() + 1e-9


class TestDualityProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        connected_graph(max_n=8),
        st.floats(min_value=0.0, max_value=0.9),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_duality_exact_for_any_graph_alpha_schedule(
        self, graph, alpha, steps, seed
    ):
        """Lemma 5.2 holds deterministically for every graph, alpha and
        random schedule — the strongest property in the paper."""
        n = graph.number_of_nodes()
        rng = np.random.default_rng(seed)
        initial = rng.normal(size=n) * 10
        trace = run_coupled(graph, initial, alpha=alpha, k=1, steps=steps, seed=seed)
        scale = max(1.0, float(np.max(np.abs(initial))))
        assert trace.max_error <= 1e-10 * scale


class TestMuClosedFormProperties:
    @given(
        st.integers(min_value=3, max_value=200),
        st.integers(min_value=2, max_value=20),
        st.data(),
    )
    def test_normalisation_always_holds(self, n, d, data):
        if d >= n:
            d = n - 1
        k = data.draw(st.integers(min_value=1, max_value=d))
        alpha = data.draw(st.floats(min_value=0.0, max_value=0.99))
        mu0, mu1, mu_plus = mu_closed_form(n, d, k, alpha)
        total = n * mu0 + n * d * mu1 + n * (n - d - 1) * mu_plus
        assert total == pytest.approx(1.0, abs=1e-9)
        # gamma = k(1+alpha) - (1-alpha) can be 0 at the voter boundary
        # (alpha = 0, k = 1), where mu_1 and mu_+ legitimately vanish.
        # For 0 < alpha below float epsilon, (1 +- alpha) both round to
        # 1.0 so gamma computes to exactly 0 while 2*alpha*k does not,
        # leaving an O(alpha)-scale negative rounding residue.
        residue = 4.0 * k * alpha + 1e-30
        assert mu0 > 0 and mu1 >= -residue and mu_plus >= -residue
        if alpha > 1e-12:
            assert mu1 > 0 and mu_plus > 0


class TestAdjacencyProperties:
    @settings(max_examples=30, deadline=None)
    @given(connected_graph())
    def test_adjacency_roundtrip(self, graph):
        adjacency = Adjacency.from_graph(graph)
        rebuilt = adjacency.to_networkx()
        assert sorted(map(tuple, map(sorted, rebuilt.edges()))) == sorted(
            map(tuple, map(sorted, graph.edges()))
        )
        assert int(adjacency.degrees.sum()) == 2 * graph.number_of_edges()

    @settings(max_examples=30, deadline=None)
    @given(connected_graph())
    def test_pi_sums_to_one(self, graph):
        adjacency = Adjacency.from_graph(graph)
        assert adjacency.stationary_pi().sum() == pytest.approx(1.0)


class TestScheduleProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.lists(
                    st.integers(min_value=0, max_value=9), max_size=3, unique=True
                ),
            ),
            max_size=30,
        )
    )
    def test_reverse_is_involution(self, pairs):
        schedule = Schedule.from_pairs([(u, tuple(s)) for u, s in pairs])
        assert schedule.reversed().reversed() == schedule
        assert len(schedule.reversed()) == len(schedule)
