"""Tests for result tables, scaling fits and RNG helpers."""

import json

import numpy as np
import pytest

from repro.analysis.fits import loglog_slope, ratio_statistics
from repro.exceptions import ParameterError
from repro.rng import as_generator, sample_without_replacement, spawn, stream_seeds
from repro.sim.results import ResultTable


class TestResultTable:
    def test_add_row_and_render(self):
        table = ResultTable("demo", ["a", "b"])
        table.add_row(1, 2.34567)
        text = table.render()
        assert "demo" in text
        assert "2.346" in text

    def test_row_length_checked(self):
        table = ResultTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_row_length_error_names_table(self):
        table = ResultTable("demo", ["a", "b"])
        with pytest.raises(ValueError, match="table 'demo'"):
            table.add_row(1)

    def test_column_extraction(self):
        table = ResultTable("demo", ["a", "b"])
        table.add_row(1, 10.0)
        table.add_row(2, 20.0)
        assert table.column("b") == [10.0, 20.0]

    def test_missing_column_error_lists_available(self):
        table = ResultTable("demo", ["a", "b"])
        with pytest.raises(ValueError) as excinfo:
            table.column("nope")
        message = str(excinfo.value)
        assert "table 'demo'" in message
        assert "'nope'" in message
        assert "'a'" in message and "'b'" in message

    def test_payload_roundtrip(self):
        table = ResultTable("demo", ["x", "y"])
        table.add_row(1, "v")
        table.add_note("n")
        rebuilt = ResultTable.from_payload(table.to_payload())
        assert rebuilt == table

    def test_bool_rendering(self):
        table = ResultTable("demo", ["ok"])
        table.add_row(True)
        table.add_row(False)
        assert "yes" in table.render()
        assert "no" in table.render()

    def test_markdown_rendering(self):
        table = ResultTable("demo", ["x"])
        table.add_row(1.5)
        markdown = table.render_markdown()
        assert markdown.startswith("**demo**")
        assert "| x |" in markdown

    def test_notes_rendered(self):
        table = ResultTable("demo", ["x"])
        table.add_row(1)
        table.add_note("hello world")
        assert "hello world" in table.render()
        assert "hello world" in table.render_markdown()

    def test_json_roundtrip(self):
        table = ResultTable("demo", ["x", "y"])
        table.add_row(1, "v")
        payload = json.loads(table.to_json())
        assert payload["title"] == "demo"
        assert payload["rows"] == [[1, "v"]]

    def test_empty_table_renders(self):
        table = ResultTable("empty", ["only"])
        assert "only" in table.render()


class TestLogLogSlope:
    def test_recovers_power_law(self):
        x = np.array([10.0, 20.0, 40.0, 80.0])
        y = 3.0 * x**2.5
        slope, intercept = loglog_slope(x, y)
        assert slope == pytest.approx(2.5)
        assert np.exp(intercept) == pytest.approx(3.0)

    def test_noisy_power_law(self):
        rng = np.random.default_rng(1)
        x = np.logspace(1, 3, 30)
        y = x**1.5 * np.exp(rng.normal(0, 0.05, size=30))
        slope, _ = loglog_slope(x, y)
        assert slope == pytest.approx(1.5, abs=0.1)

    def test_validation(self):
        with pytest.raises(ParameterError):
            loglog_slope([1.0], [2.0])
        with pytest.raises(ParameterError):
            loglog_slope([1.0, -1.0], [2.0, 3.0])


class TestRatioStatistics:
    def test_band(self):
        stats = ratio_statistics([1.0, 2.0, 4.0], [1.0, 1.0, 1.0])
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.band == 4.0
        assert stats.geometric_mean == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            ratio_statistics([1.0], [1.0, 2.0])
        with pytest.raises(ParameterError):
            ratio_statistics([1.0], [0.0])


class TestRngHelpers:
    def test_as_generator_idempotent(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_as_generator_from_int(self):
        a = as_generator(5).random()
        b = as_generator(5).random()
        assert a == b

    def test_spawn_children_independent_and_reproducible(self):
        first = [g.random() for g in spawn(7, 3)]
        second = [g.random() for g in spawn(7, 3)]
        assert first == second
        assert len(set(first)) == 3

    def test_spawn_from_generator(self):
        children = spawn(np.random.default_rng(1), 2)
        assert len(children) == 2

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn(1, -1)

    def test_stream_seeds(self):
        seeds = stream_seeds(3, 5)
        assert len(seeds) == 5
        assert seeds == stream_seeds(3, 5)

    def test_sample_without_replacement_distinct(self):
        rng = as_generator(2)
        pool = np.arange(10)
        for k in (1, 3, 10):
            sample = sample_without_replacement(rng, pool, k)
            assert len(np.unique(sample)) == k

    def test_sample_without_replacement_overdraw(self):
        rng = as_generator(2)
        with pytest.raises(ValueError):
            sample_without_replacement(rng, np.arange(3), 4)
