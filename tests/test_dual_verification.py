"""Tests for the statistical verification of Lemma 5.3 / Prop 5.4 / Lemma 5.5."""

import networkx as nx
import numpy as np
import pytest

from repro.core.schedule import Schedule
from repro.dual.verification import (
    MomentCheck,
    check_lemma_53,
    check_lemma_55,
    check_proposition_54,
)
from repro.exceptions import ParameterError


class TestMomentCheck:
    def test_z_score(self):
        check = MomentCheck(estimate=1.2, reference=1.0, standard_error=0.1)
        assert check.z_score == pytest.approx(2.0)
        assert check.consistent

    def test_inconsistent(self):
        check = MomentCheck(estimate=2.0, reference=1.0, standard_error=0.1)
        assert not check.consistent

    def test_degenerate_se(self):
        assert MomentCheck(1.0, 1.0, 0.0).consistent
        assert not MomentCheck(2.0, 1.0, 0.0).consistent


@pytest.fixture
def setup():
    graph = nx.petersen_graph()
    rng = np.random.default_rng(5)
    cost = rng.normal(size=10)
    return graph, cost


class TestLemma53:
    def test_conditional_mean_matches_diffusion(self, setup):
        graph, cost = setup
        rng = np.random.default_rng(1)
        pairs = []
        for _ in range(12):
            u = int(rng.integers(10))
            v = int(rng.choice(sorted(graph.neighbors(u))))
            pairs.append((u, (v,)))
        schedule = Schedule.from_pairs(pairs)
        check = check_lemma_53(
            graph, cost, alpha=0.5, k=1, schedule=schedule, walk=3,
            replicas=15_000, seed=2,
        )
        assert check.consistent, f"z = {check.z_score}"

    def test_with_k2(self, setup):
        graph, cost = setup
        rng = np.random.default_rng(3)
        pairs = []
        for _ in range(8):
            u = int(rng.integers(10))
            neighbours = sorted(graph.neighbors(u))
            sample = tuple(
                int(x) for x in rng.choice(neighbours, size=2, replace=False)
            )
            pairs.append((u, sample))
        schedule = Schedule.from_pairs(pairs)
        check = check_lemma_53(
            graph, cost, alpha=0.3, k=2, schedule=schedule, walk=0,
            replicas=15_000, seed=4,
        )
        assert check.consistent, f"z = {check.z_score}"

    def test_validation(self, setup):
        graph, cost = setup
        with pytest.raises(ParameterError):
            check_lemma_53(graph, cost, 0.5, 1, Schedule(), walk=0, replicas=1)


class TestProposition54:
    @pytest.mark.parametrize("pair", [(0, 5), (2, 2)])
    def test_second_moments_match(self, setup, pair):
        graph, cost = setup
        check = check_proposition_54(
            graph, cost, alpha=0.5, k=2, steps=25, pair=pair,
            replicas=3_000, seed=6,
        )
        assert check.consistent, f"z = {check.z_score}"

    def test_validation(self, setup):
        graph, cost = setup
        with pytest.raises(ParameterError):
            check_proposition_54(graph, cost, 0.5, 1, 10, (0, 1), replicas=1)


class TestLemma55:
    def test_long_run_moment_matches_mu_form(self, setup):
        """After the Q-chain mixes, E[W~(a) W~(b)] equals the Lemma 5.7
        quadratic form — the final link in the Prop 5.8 proof chain."""
        graph, cost = setup
        cost = cost - cost.mean()
        check = check_lemma_55(
            graph, cost, alpha=0.5, k=1, pair=(0, 7), horizon=800,
            replicas=4_000, seed=7,
        )
        assert check.consistent, f"z = {check.z_score}"

    def test_validation(self, setup):
        graph, cost = setup
        with pytest.raises(ParameterError):
            check_lemma_55(graph, cost, 0.5, 1, (0, 1), horizon=10, replicas=1)
