"""Tests for the convergence-time bound expressions."""

import math

import pytest

from repro.exceptions import ParameterError
from repro.theory import convergence as conv


class TestNodeBounds:
    def test_upper_bound_formula(self):
        value = conv.node_model_upper_bound(10, 0.5, 4.0, 1e-3)
        assert value == pytest.approx(10 * math.log(10 * 4.0 / 1e-3) / 0.5)

    def test_upper_bound_monotone_in_gap(self):
        tight = conv.node_model_upper_bound(10, 0.9, 4.0, 1e-3)
        loose = conv.node_model_upper_bound(10, 0.1, 4.0, 1e-3)
        assert tight > loose

    def test_upper_bound_monotone_in_epsilon(self):
        assert conv.node_model_upper_bound(10, 0.5, 4.0, 1e-6) > conv.node_model_upper_bound(
            10, 0.5, 4.0, 1e-3
        )

    def test_lower_bound_scales_with_alpha(self):
        moderate = conv.node_model_lower_bound(10, 0.5, 4.0, 1e-3, alpha=0.5)
        stubborn = conv.node_model_lower_bound(10, 0.5, 4.0, 1e-3, alpha=0.9)
        assert stubborn > moderate  # more self-weight -> slower

    def test_validation(self):
        with pytest.raises(ParameterError):
            conv.node_model_upper_bound(1, 0.5, 4.0, 1e-3)
        with pytest.raises(ParameterError):
            conv.node_model_upper_bound(10, 1.0, 4.0, 1e-3)
        with pytest.raises(ParameterError):
            conv.node_model_upper_bound(10, 0.5, 0.0, 1e-3)
        with pytest.raises(ParameterError):
            conv.node_model_upper_bound(10, 0.5, 4.0, 0.0)
        with pytest.raises(ParameterError):
            conv.node_model_lower_bound(10, 0.5, 4.0, 1e-3, alpha=0.0)


class TestEdgeBounds:
    def test_upper_bound_formula(self):
        value = conv.edge_model_upper_bound(10, 15, 2.0, 4.0, 1e-3)
        assert value == pytest.approx(15 * math.log(10 * 4.0 / 1e-3) / 2.0)

    def test_regular_graph_consistency_with_node_bound(self):
        """For d-regular graphs 1 - lambda2(P_lazy) = lambda2(L)/(2d) and
        m = n d / 2, so the two theorem expressions agree up to the fixed
        constant 4 (the paper: "both theorems give the same bound ... there
        is a factor of d between 1 - lambda2(P) and lambda2(L)")."""
        n, d = 20, 4
        m = n * d // 2
        lambda2_l = 0.8
        lambda2_p = 1.0 - lambda2_l / (2 * d)
        node = conv.node_model_upper_bound(n, lambda2_p, 5.0, 1e-4)
        edge = conv.edge_model_upper_bound(n, m, lambda2_l, 5.0, 1e-4)
        assert node == pytest.approx(4.0 * edge)

    def test_validation(self):
        with pytest.raises(ParameterError):
            conv.edge_model_upper_bound(10, 0, 2.0, 4.0, 1e-3)
        with pytest.raises(ParameterError):
            conv.edge_model_upper_bound(10, 15, 0.0, 4.0, 1e-3)
        with pytest.raises(ParameterError):
            conv.edge_model_lower_bound(10, 15, 2.0, 4.0, 1e-3, alpha=1.0)


class TestSharpPredictions:
    def test_predicted_zero_when_already_converged(self):
        assert conv.predicted_t_eps_node(10, 0.5, 0.5, 1, phi0=1e-9, epsilon=1e-3) == 0.0

    def test_predicted_positive(self):
        value = conv.predicted_t_eps_node(10, 0.5, 0.5, 1, phi0=1.0, epsilon=1e-6)
        assert value > 0

    def test_prediction_decreases_with_k(self):
        slow = conv.predicted_t_eps_node(10, 0.5, 0.5, 1, phi0=1.0, epsilon=1e-6)
        fast = conv.predicted_t_eps_node(10, 0.5, 0.5, 4, phi0=1.0, epsilon=1e-6)
        assert fast <= slow
        assert slow / fast <= 2.0 + 1e-9  # the paper's (1 + 1/k) band

    def test_predicted_edge(self):
        value = conv.predicted_t_eps_edge(15, 2.0, 0.5, phi0=1.0, epsilon=1e-6)
        assert value == pytest.approx(
            math.log(1e6) / (0.5 * 0.5 * 2.0 / 15)
        )

    def test_validation(self):
        with pytest.raises(ParameterError):
            conv.predicted_t_eps_node(10, 0.5, 0.5, 1, phi0=0.0, epsilon=1e-3)


class TestVoterReference:
    def test_formula(self):
        assert conv.voter_model_reference_bound(100, 0.5) == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            conv.voter_model_reference_bound(1, 0.5)
