"""Tests for the Diffusion Process (Section 5.1)."""

import numpy as np
import pytest

from repro.core.schedule import Schedule, SelectionStep
from repro.dual.diffusion import DiffusionProcess
from repro.dual.matrices import diffusion_step_matrix, product_matrix
from repro.exceptions import ParameterError


class TestConstruction:
    def test_default_loads_identity(self, triangle):
        process = DiffusionProcess(triangle, cost=[1.0, 2.0, 3.0], alpha=0.5)
        assert np.allclose(process.loads, np.eye(3))
        assert process.num_commodities == 3

    def test_single_vector_load(self, triangle):
        process = DiffusionProcess(
            triangle, cost=[1.0, 2.0, 3.0], alpha=0.5, loads=np.array([0.0, 1.0, 0.0])
        )
        assert process.loads.shape == (3, 1)

    def test_validation(self, triangle):
        with pytest.raises(ParameterError):
            DiffusionProcess(triangle, cost=[1.0, 2.0], alpha=0.5)
        with pytest.raises(ParameterError):
            DiffusionProcess(triangle, cost=[1.0, 2.0, 3.0], alpha=1.0)
        with pytest.raises(ParameterError):
            DiffusionProcess(triangle, cost=[1.0, 2.0, 3.0], alpha=0.5, k=0)
        with pytest.raises(ParameterError):
            DiffusionProcess(triangle, cost=[1.0, 2.0, 3.0], alpha=0.5, k=5)


class TestStepSemantics:
    def test_step_with_matches_matrix_action(self, petersen, rng):
        cost = rng.normal(size=10)
        process = DiffusionProcess(petersen, cost=cost, alpha=0.4, k=2)
        step = SelectionStep(0, tuple(sorted(petersen.neighbors(0))[:2]))
        expected = diffusion_step_matrix(10, step, alpha=0.4) @ process.loads
        process.step_with(step)
        assert np.allclose(process.loads, expected)

    def test_figure1_first_diffusion_step(self, triangle):
        # Figure 1(b): u2 sends 1/2 of its load to u1 -> column [1/2, 1/2, 0].
        process = DiffusionProcess(triangle, cost=[6.0, 8.0, 9.0], alpha=0.5, k=1)
        process.step_with(SelectionStep(1, (0,)))
        assert np.allclose(process.commodity_load(1), [0.5, 0.5, 0.0])

    def test_mass_conserved(self, petersen, rng):
        process = DiffusionProcess(petersen, cost=rng.normal(size=10), alpha=0.3, k=3)
        for _ in range(500):
            process.step()
        assert np.allclose(process.total_mass(), 1.0)

    def test_loads_stay_nonnegative(self, petersen, rng):
        process = DiffusionProcess(petersen, cost=rng.normal(size=10), alpha=0.3, k=1)
        for _ in range(500):
            process.step()
        assert np.all(process.loads >= -1e-15)

    def test_noop_step_changes_nothing(self, triangle):
        process = DiffusionProcess(triangle, cost=[1.0, 2.0, 3.0], alpha=0.5)
        before = process.loads.copy()
        process.step_with(SelectionStep(0, ()))
        assert np.allclose(process.loads, before)
        assert process.t == 1

    def test_random_step_selection_valid(self, petersen):
        process = DiffusionProcess(petersen, cost=np.zeros(10), alpha=0.5, k=2, seed=3)
        for _ in range(100):
            selection = process.step()
            assert len(selection.sample) == 2
            for v in selection.sample:
                assert petersen.has_edge(selection.node, v)


class TestReplayAndCosts:
    def test_replay_equals_product_matrix(self, petersen, rng):
        cost = rng.normal(size=10)
        schedule = Schedule.from_pairs(
            [(u, (sorted(petersen.neighbors(u))[0],)) for u in range(10)]
        )
        process = DiffusionProcess(petersen, cost=cost, alpha=0.5, k=1)
        process.replay(schedule)
        r = product_matrix(10, schedule, alpha=0.5)
        assert np.allclose(process.loads, r)
        assert np.allclose(process.costs, cost @ r)

    def test_costs_shape(self, triangle):
        process = DiffusionProcess(triangle, cost=[1.0, 2.0, 3.0], alpha=0.5)
        assert process.costs.shape == (3,)

    def test_cost_of_commodity_converges_to_weighted_mix(self, petersen, rng):
        # After many steps each commodity spreads out; its cost is a convex
        # combination of initial values, so it stays within the hull.
        cost = rng.normal(size=10)
        process = DiffusionProcess(petersen, cost=cost, alpha=0.5, k=1, seed=5)
        for _ in range(2_000):
            process.step()
        assert np.all(process.costs <= cost.max() + 1e-12)
        assert np.all(process.costs >= cost.min() - 1e-12)
