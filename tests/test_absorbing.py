"""Exact absorbing-chain backend: oracles, solver agreement, guards.

Four layers, mirroring DESIGN.md section 12:

1. *Hand-computed oracles* — P2/P3, K3 and C4 at ``alpha = 0.5`` have
   meeting/coalescence/MFPT expectations small enough to derive on
   paper; the solver must hit them to ~machine precision.
2. *Structural laws* — every off-diagonal transition carries the
   factor ``1 - alpha``, so all expected times scale exactly like
   ``1/(1 - alpha)``; complete graphs admit the cluster-count closed
   form ``(n - 1)^2 / (1 - alpha)`` at any ``n``.
3. *Exact vs Monte-Carlo* — the solver is the expectation of what
   :func:`repro.sim.sample_meeting_times` samples, checked through
   :func:`repro.dual.check_coalescence_exact` at n <= 64.
4. *Bipartite guard* — the ``alpha == 0`` + bipartite regression of
   the dual sampler (parity lock), for every engine.
"""

import networkx as nx
import numpy as np
import pytest

from repro.dual.verification import check_coalescence_exact
from repro.exceptions import ConvergenceError, ParameterError
from repro.graphs.adjacency import Adjacency
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    petersen_graph,
    random_regular_graph,
)
from repro.graphs.properties import is_bipartite
from repro.sim.montecarlo import sample_meeting_times, validate_engine
from repro.theory.absorbing import (
    DENSE_STATE_CUTOFF,
    exact_coalescence_feasible,
    exact_coalescence_time,
    expected_meeting_time,
    mean_first_passage_times,
    meeting_time_matrix,
    scipy_available,
    validate_solver,
    walk_transition_matrix,
)

needs_scipy = pytest.mark.skipif(
    not scipy_available(), reason="scipy not installed"
)


# ----------------------------------------------------------------------
# Hand-computed oracles
# ----------------------------------------------------------------------
class TestHandOracles:
    @pytest.mark.parametrize("alpha", [0.0, 0.5])
    def test_p2_pair_meets_in_one_over_beta(self, alpha):
        """P2: one of the two walks is selected every round and moves
        w.p. (1 - alpha) onto the other: E = 1/(1 - alpha)."""
        value = expected_meeting_time(path_graph(2), 0, 1, alpha=alpha)
        assert value == pytest.approx(1.0 / (1.0 - alpha))

    @pytest.mark.parametrize("alpha", [0.0, 0.5])
    def test_p2_mfpt(self, alpha):
        """P2 single walk: moves only in the 1/2 of rounds selecting
        its node, then w.p. (1 - alpha): E[hit] = 2/(1 - alpha)."""
        times = mean_first_passage_times(path_graph(2), 1, alpha=alpha)
        assert times[0] == pytest.approx(2.0 / (1.0 - alpha))
        assert times[1] == 0.0

    def test_p3_mfpt_endpoint_to_endpoint(self):
        """P3, alpha=0: from an endpoint each move goes to the middle
        (rate 1/3) and from the middle half the moves (rate 1/3, each
        neighbour 1/6) reach the target: m0 = 3 + m1, m1 = 6 + m0/2,
        so m0 = 12, m1 = 9."""
        times = mean_first_passage_times(path_graph(3), 2, alpha=0.0)
        assert times[0] == pytest.approx(12.0)
        assert times[1] == pytest.approx(9.0)

    @pytest.mark.parametrize("alpha", [0.0, 0.5])
    def test_k3_pair_and_coalescence(self, alpha):
        """K3: a selected walk leaves its partner w.p. 1/2, so the pair
        meets at rate (1 - alpha) * 2/3 * 1/2 = E = 3/(1 - alpha); full
        coalescence adds the (n-1)^2 closed form = 4/(1 - alpha)."""
        k3 = complete_graph(3)
        assert expected_meeting_time(k3, 0, 1, alpha=alpha) == pytest.approx(
            3.0 / (1.0 - alpha)
        )
        assert exact_coalescence_time(k3, alpha=alpha) == pytest.approx(
            4.0 / (1.0 - alpha)
        )

    def test_c4_meeting_times_at_half_laziness(self):
        """C4, alpha=0.5: solving the two-distance system by hand gives
        E[adjacent] = 12 and E[opposite] = 16."""
        matrix = meeting_time_matrix(cycle_graph(4), alpha=0.5)
        assert matrix[0, 1] == pytest.approx(12.0)
        assert matrix[0, 2] == pytest.approx(16.0)
        assert matrix[1, 2] == pytest.approx(12.0)
        assert np.diag(matrix) == pytest.approx(np.zeros(4))
        np.testing.assert_allclose(matrix, matrix.T)

    def test_walk_transition_matrix_is_the_round_law(self):
        p = walk_transition_matrix(cycle_graph(5), alpha=0.5)
        np.testing.assert_allclose(p.sum(axis=1), np.ones(5))
        # off-diagonal: (1 - alpha) / (n deg) = 0.5 / 10
        assert p[0, 1] == pytest.approx(0.05)
        assert p[0, 0] == pytest.approx(1.0 - 0.1)


class TestStructuralLaws:
    def test_laziness_scales_all_times_exactly(self):
        graph = petersen_graph()
        base = meeting_time_matrix(graph, alpha=0.0)
        lazy = meeting_time_matrix(graph, alpha=0.75)
        np.testing.assert_allclose(lazy, base * 4.0, rtol=1e-9)
        base_c = exact_coalescence_time(cycle_graph(7), alpha=0.0)
        lazy_c = exact_coalescence_time(cycle_graph(7), alpha=0.5)
        assert lazy_c == pytest.approx(2.0 * base_c, rel=1e-9)

    @pytest.mark.parametrize("n", [2, 3, 8, 64, 500])
    def test_complete_graph_closed_form_any_n(self, n):
        assert exact_coalescence_time(
            complete_graph(n), alpha=0.25
        ) == pytest.approx((n - 1) ** 2 / 0.75)

    def test_complete_graph_closed_form_matches_subset_chain(self, monkeypatch):
        """The cluster-count lumping agrees with the generic 2^n
        occupied-set chain on K5."""
        import repro.theory.absorbing as absorbing

        closed = exact_coalescence_time(complete_graph(5), alpha=0.3)
        monkeypatch.setattr(absorbing, "_is_complete", lambda adj: False)
        generic = exact_coalescence_time(complete_graph(5), alpha=0.3)
        assert generic == pytest.approx(closed, rel=1e-9)

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            meeting_time_matrix(cycle_graph(5), alpha=1.0)
        with pytest.raises(ParameterError):
            mean_first_passage_times(cycle_graph(5), [])
        with pytest.raises(ParameterError):
            mean_first_passage_times(cycle_graph(5), 9)
        with pytest.raises(ParameterError):
            expected_meeting_time(cycle_graph(5), 0, 7)

    def test_infeasible_coalescence_raises(self):
        graph = cycle_graph(25)  # odd, non-complete, n > sparse cap
        assert not exact_coalescence_feasible(graph)
        with pytest.raises(ParameterError, match="occupied-set chain"):
            exact_coalescence_time(graph)

    def test_mfpt_multiple_targets(self):
        """Hitting either endpoint of P3 from the middle: the middle
        moves at rate 1/3 and always lands on a target."""
        times = mean_first_passage_times(path_graph(3), [0, 2], alpha=0.0)
        assert times[0] == times[2] == 0.0
        assert times[1] == pytest.approx(3.0)


# ----------------------------------------------------------------------
# Solver dispatch
# ----------------------------------------------------------------------
class TestSolvers:
    def test_validate_solver(self):
        for name in ("auto", "dense"):
            assert validate_solver(name) == name
        with pytest.raises(ParameterError):
            validate_solver("qr")

    @needs_scipy
    def test_sparse_and_cg_match_dense(self):
        """Solver bit-agreement: identical chains, tolerances far below
        anything the experiments resolve."""
        graph = random_regular_graph(12, 3, seed=5)
        dense = meeting_time_matrix(graph, alpha=0.25, solver="dense")
        sparse = meeting_time_matrix(graph, alpha=0.25, solver="sparse")
        cg = meeting_time_matrix(graph, alpha=0.25, solver="cg")
        np.testing.assert_allclose(sparse, dense, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(cg, dense, rtol=1e-9, atol=1e-9)
        d = exact_coalescence_time(cycle_graph(9), alpha=0.0, solver="dense")
        s = exact_coalescence_time(cycle_graph(9), alpha=0.0, solver="sparse")
        assert s == pytest.approx(d, rel=1e-9)

    def test_sparse_without_scipy_raises(self, monkeypatch):
        import repro.theory.absorbing as absorbing

        monkeypatch.setattr(absorbing, "scipy_available", lambda: False)
        with pytest.raises(ParameterError, match="requires scipy"):
            meeting_time_matrix(cycle_graph(5), solver="sparse")

    def test_auto_is_dense_below_cutoff(self):
        # n(n-1)/2 pair states stay below the cutoff here, so "auto"
        # and "dense" must be the same solve bit for bit.
        graph = petersen_graph()
        assert 10 * 9 // 2 < DENSE_STATE_CUTOFF
        np.testing.assert_array_equal(
            meeting_time_matrix(graph, alpha=0.5, solver="auto"),
            meeting_time_matrix(graph, alpha=0.5, solver="dense"),
        )


# ----------------------------------------------------------------------
# Exact vs Monte-Carlo (n <= 64)
# ----------------------------------------------------------------------
class TestExactVsMonteCarlo:
    @pytest.mark.parametrize(
        "graph,alpha",
        [
            (cycle_graph(7), 0.0),
            (petersen_graph(), 0.5),
            (complete_graph(64), 0.25),
        ],
        ids=["cycle7", "petersen", "complete64"],
    )
    def test_batch_engine_agrees_with_exact(self, graph, alpha):
        check = check_coalescence_exact(
            graph, alpha=alpha, replicas=400, seed=11, engine="batch"
        )
        assert check.consistent, (
            f"MC {check.estimate:.2f} vs exact {check.reference:.2f} "
            f"(z = {check.z_score:.2f})"
        )

    def test_loop_engine_agrees_with_exact(self):
        check = check_coalescence_exact(
            complete_graph(8), alpha=0.5, replicas=300, seed=3, engine="loop"
        )
        assert check.consistent

    def test_exact_engine_returns_constant_expectation(self):
        graph = cycle_graph(9)
        times = sample_meeting_times(graph, 5, seed=1, engine="exact")
        assert times.shape == (5,)
        assert np.ptp(times) == 0.0
        assert times[0] == pytest.approx(exact_coalescence_time(graph))

    def test_exact_engine_honors_alpha(self):
        graph = complete_graph(30)
        times = sample_meeting_times(graph, 3, alpha=0.5, engine="exact")
        assert times[0] == pytest.approx(29**2 / 0.5)

    def test_exact_engine_infeasible_graph_raises(self):
        with pytest.raises(ParameterError, match="occupied-set chain"):
            sample_meeting_times(cycle_graph(25), 3, engine="exact")

    def test_validate_engine_gates_exact(self):
        assert validate_engine("exact", allow_exact=True) == "exact"
        with pytest.raises(ParameterError):
            validate_engine("exact")
        with pytest.raises(ParameterError):
            validate_engine("bogus", allow_exact=True)


# ----------------------------------------------------------------------
# Bipartite + alpha == 0: the parity-lock guard
# ----------------------------------------------------------------------
class TestBipartiteGuard:
    @pytest.mark.parametrize(
        "graph",
        [
            cycle_graph(6),
            nx.complete_bipartite_graph(3, 3),
            hypercube_graph(16),
        ],
        ids=["even_cycle", "complete_bipartite", "hypercube"],
    )
    @pytest.mark.parametrize("engine", ["batch", "loop", "exact"])
    def test_alpha_zero_on_bipartite_raises(self, graph, engine):
        assert is_bipartite(graph)
        with pytest.raises(ParameterError, match="bipartite"):
            sample_meeting_times(graph, 4, seed=0, engine=engine)

    def test_laziness_lifts_the_guard(self):
        times = sample_meeting_times(
            cycle_graph(6), 4, seed=0, alpha=0.5, engine="batch"
        )
        assert np.all(times > 0)
        exact = sample_meeting_times(
            cycle_graph(6), 2, alpha=0.5, engine="exact"
        )
        assert exact[0] == pytest.approx(
            exact_coalescence_time(cycle_graph(6), alpha=0.5)
        )

    def test_odd_cycle_passes_at_alpha_zero(self):
        times = sample_meeting_times(cycle_graph(7), 4, seed=0)
        assert np.all(times > 0)

    def test_is_bipartite_predicate(self):
        assert is_bipartite(cycle_graph(8))
        assert not is_bipartite(cycle_graph(7))
        assert not is_bipartite(petersen_graph())
        assert is_bipartite(Adjacency.from_graph(path_graph(4)))
