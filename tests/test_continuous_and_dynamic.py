"""Tests for the continuous-time clock and dynamic-graph averaging."""

import networkx as nx
import numpy as np
import pytest

from repro.core.continuous import (
    PoissonClock,
    continuous_time_bound_node,
    edge_model_event_rate,
    node_model_event_rate,
    steps_to_time,
    time_to_steps,
)
from repro.core.dynamic import DynamicAveraging
from repro.exceptions import ConvergenceError, ParameterError


class TestPoissonClock:
    def test_times_increase(self):
        clock = PoissonClock(rate=5.0, seed=1)
        times = [clock.next_time() for _ in range(100)]
        assert all(b > a for a, b in zip(times, times[1:]))
        assert clock.ticks == 100

    def test_mean_gap_matches_rate(self):
        clock = PoissonClock(rate=10.0, seed=2)
        times = clock.sample_times(20_000)
        gaps = np.diff(np.concatenate([[0.0], times]))
        assert gaps.mean() == pytest.approx(0.1, rel=0.05)

    def test_gap_distribution_memoryless(self):
        """Exponential gaps: P(gap > 2/rate) ~ e^-2."""
        clock = PoissonClock(rate=1.0, seed=3)
        gaps = np.diff(np.concatenate([[0.0], clock.sample_times(20_000)]))
        tail = float(np.mean(gaps > 2.0))
        assert tail == pytest.approx(np.exp(-2.0), abs=0.01)

    def test_sample_times_advances_clock(self):
        clock = PoissonClock(rate=1.0, seed=4)
        first = clock.sample_times(10)
        second = clock.sample_times(10)
        assert second[0] > first[-1]
        assert clock.ticks == 20

    def test_empty_sample(self):
        clock = PoissonClock(rate=1.0, seed=5)
        assert len(clock.sample_times(0)) == 0
        assert clock.ticks == 0

    def test_validation(self):
        with pytest.raises(ParameterError):
            PoissonClock(rate=0.0)
        clock = PoissonClock(rate=1.0, seed=6)
        with pytest.raises(ParameterError):
            clock.sample_times(-1)


class TestRateConversions:
    def test_event_rates(self):
        assert node_model_event_rate(50) == 50.0
        assert edge_model_event_rate(30) == 60.0

    def test_steps_time_roundtrip(self):
        steps = 1234.0
        rate = 17.0
        assert time_to_steps(steps_to_time(steps, rate), rate) == pytest.approx(steps)

    def test_continuous_bound_cancels_n(self):
        """The continuous-time NodeModel bound is the step bound / n —
        the synchronous-comparison bookkeeping of Section 2."""
        from repro.theory.convergence import node_model_upper_bound

        bound_steps = node_model_upper_bound(40, 0.5, 10.0, 1e-4)
        bound_time = continuous_time_bound_node(40, 0.5, 10.0, 1e-4)
        assert bound_time == pytest.approx(bound_steps / 40.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            node_model_event_rate(0)
        with pytest.raises(ParameterError):
            steps_to_time(-1.0, 5.0)
        with pytest.raises(ParameterError):
            time_to_steps(1.0, 0.0)


@pytest.fixture
def snapshots():
    return [
        nx.cycle_graph(12),
        nx.random_regular_graph(4, 12, seed=1),
        nx.complete_graph(12),
    ]


class TestDynamicAveraging:
    def test_construction_validation(self, snapshots, rng):
        initial = rng.normal(size=12)
        with pytest.raises(ParameterError):
            DynamicAveraging([], initial)
        with pytest.raises(ParameterError):
            DynamicAveraging(snapshots, initial, model="gossip")
        with pytest.raises(ParameterError):
            DynamicAveraging(snapshots, initial, switch_every=0)
        with pytest.raises(ParameterError):
            DynamicAveraging(snapshots, rng.normal(size=5))
        with pytest.raises(ParameterError):
            # k = 3 exceeds the cycle snapshot's degree 2.
            DynamicAveraging(snapshots, initial, k=3)

    def test_mismatched_node_sets_rejected(self, rng):
        with pytest.raises(ParameterError, match="same node set"):
            DynamicAveraging(
                [nx.cycle_graph(10), nx.cycle_graph(12)], rng.normal(size=10)
            )

    def test_snapshot_rotation(self, snapshots, rng):
        process = DynamicAveraging(
            snapshots, rng.normal(size=12), switch_every=50, seed=2
        )
        assert process.current_snapshot == 0
        process.run(50)
        assert process.current_snapshot == 1
        process.run(100)
        assert process.current_snapshot == 0  # wrapped around 3 snapshots

    def test_partial_runs_respect_switch_boundary(self, snapshots, rng):
        process = DynamicAveraging(
            snapshots, rng.normal(size=12), switch_every=64, seed=3
        )
        process.run(30)
        assert process.current_snapshot == 0
        process.run(34)
        assert process.current_snapshot == 1

    def test_convex_hull_preserved_across_switches(self, snapshots, rng):
        initial = rng.normal(size=12)
        process = DynamicAveraging(snapshots, initial, switch_every=10, seed=4)
        process.run(3_000)
        assert process.values.min() >= initial.min() - 1e-12
        assert process.values.max() <= initial.max() + 1e-12

    def test_converges_on_dynamic_graphs(self, snapshots, rng):
        initial = rng.normal(size=12)
        process = DynamicAveraging(snapshots, initial, switch_every=25, seed=5)
        value, steps = process.run_to_consensus(discrepancy_tol=1e-9)
        assert steps > 0
        assert initial.min() <= value <= initial.max()

    def test_shuffled_rotation(self, snapshots, rng):
        process = DynamicAveraging(
            snapshots, rng.normal(size=12), switch_every=5, shuffle=True, seed=6
        )
        seen = set()
        for _ in range(60):
            process.run(5)
            seen.add(process.current_snapshot)
        assert len(seen) >= 2

    def test_edge_model_variant(self, snapshots, rng):
        initial = rng.normal(size=12)
        process = DynamicAveraging(
            snapshots, initial, model="edge", switch_every=20, seed=7
        )
        value, _ = process.run_to_consensus(discrepancy_tol=1e-8)
        assert initial.min() <= value <= initial.max()

    def test_budget_exhaustion(self, snapshots, rng):
        process = DynamicAveraging(snapshots, rng.normal(size=12), seed=8)
        with pytest.raises(ConvergenceError):
            process.run_to_consensus(discrepancy_tol=1e-15, max_steps=100)

    def test_regular_snapshots_keep_average_martingale(self, rng):
        """All snapshots regular (possibly different graphs, same degree):
        the simple average stays a martingale across switches."""
        snapshots = [
            nx.random_regular_graph(4, 14, seed=s) for s in range(3)
        ]
        initial = rng.normal(size=14)
        avg0 = float(initial.mean())
        finals = []
        for s in range(600):
            process = DynamicAveraging(
                snapshots, initial, switch_every=7, seed=s
            )
            process.run(300)
            finals.append(process.simple_average)
        finals = np.asarray(finals)
        stderr = finals.std(ddof=1) / np.sqrt(len(finals))
        assert abs(finals.mean() - avg0) < 4 * stderr + 1e-12
