"""Tests for coalescing random walks (the classical voter dual)."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines.voter import VoterModel
from repro.dual.coalescing import CoalescingWalks, meeting_time_estimate
from repro.exceptions import ConvergenceError, ParameterError


class TestBasics:
    def test_initial_state(self, petersen):
        walks = CoalescingWalks(petersen, seed=1)
        assert walks.num_clusters == 10
        assert walks.positions().tolist() == list(range(10))

    def test_parameter_validation(self, petersen):
        with pytest.raises(ParameterError):
            CoalescingWalks(petersen, alpha=1.0)
        walks = CoalescingWalks(petersen, seed=1)
        with pytest.raises(ParameterError):
            walks.cluster_of(99)

    def test_cluster_count_non_increasing(self, petersen):
        walks = CoalescingWalks(petersen, seed=2)
        last = walks.num_clusters
        for _ in range(2_000):
            walks.step()
            assert walks.num_clusters <= last
            last = walks.num_clusters

    def test_coalescence_reached(self, small_regular):
        walks = CoalescingWalks(small_regular, seed=3)
        time = walks.run_to_coalescence()
        assert walks.num_clusters == 1
        assert time > 0
        # All walks report the same position afterwards.
        assert len(set(walks.positions().tolist())) == 1

    def test_budget_raises(self, petersen):
        walks = CoalescingWalks(petersen, seed=4)
        with pytest.raises(ConvergenceError):
            walks.run_to_coalescence(max_steps=1)

    def test_positions_always_valid_nodes(self, cycle6):
        walks = CoalescingWalks(cycle6, seed=5)
        for _ in range(500):
            walks.step()
            positions = walks.positions()
            assert np.all((positions >= 0) & (positions < 6))

    def test_merged_walks_stay_merged(self, cycle6):
        walks = CoalescingWalks(cycle6, seed=6)
        walks.run_to_coalescence()
        representative = walks.cluster_of(0)
        assert all(walks.cluster_of(w) == representative for w in range(6))

    def test_occupancy_consistency(self, petersen):
        """Distinct clusters always sit on distinct nodes."""
        walks = CoalescingWalks(petersen, seed=7)
        for _ in range(1_000):
            walks.step()
            clusters = {walks.cluster_of(w) for w in range(10)}
            positions = {walks.position_of(w) for w in range(10)}
            assert len(positions) == len(clusters) == walks.num_clusters


class TestLazyVariant:
    def test_alpha_slows_coalescence(self):
        graph = nx.complete_graph(8)
        eager_times = [
            CoalescingWalks(graph, alpha=0.0, seed=s).run_to_coalescence()
            for s in range(20)
        ]
        lazy_times = [
            CoalescingWalks(graph, alpha=0.8, seed=100 + s).run_to_coalescence()
            for s in range(20)
        ]
        assert np.mean(lazy_times) > 2 * np.mean(eager_times)


class TestVoterDuality:
    def test_coalescence_time_matches_voter_consensus_time(self):
        """The classical duality (footnote 2): voting time and coalescence
        time have the same distribution.  Compare the means on K6."""
        graph = nx.complete_graph(6)
        replicas = 400
        voter_times = []
        for s in range(replicas):
            voter = VoterModel(graph, list(range(6)), seed=s)
            _, steps = voter.run_to_consensus()
            voter_times.append(steps)
        walk_times = []
        for s in range(replicas):
            walks = CoalescingWalks(graph, alpha=0.0, seed=10_000 + s)
            walk_times.append(walks.run_to_coalescence())
        voter_mean = np.mean(voter_times)
        walk_mean = np.mean(walk_times)
        # Same distribution => same mean up to Monte-Carlo error (~5%).
        assert walk_mean == pytest.approx(voter_mean, rel=0.15)

    def test_meeting_time_estimate_positive(self, small_regular):
        estimate = meeting_time_estimate(small_regular, replicas=10, seed=1)
        assert estimate > 0

    def test_meeting_time_validation(self, small_regular):
        with pytest.raises(ParameterError):
            meeting_time_estimate(small_regular, replicas=0)
