"""Tests for the CLI entry point (subcommands + legacy shim)."""

import json
import re

import pytest

from repro.api import PRESETS, REGISTRY, all_experiments, experiment_ids
from repro.cli import build_cli_parser, build_parser, main
from repro.experiments import EXPERIMENTS


class TestParser:
    def test_legacy_defaults(self):
        args = build_parser().parse_args([])
        assert args.ids == []
        assert not args.slow
        assert args.seed == 0

    def test_legacy_id_and_flags(self):
        args = build_parser().parse_args(["EXP-F1", "--slow", "--seed", "9"])
        assert args.ids == ["EXP-F1"]
        assert args.slow
        assert args.seed == 9

    def test_subcommand_run_flags(self):
        args = build_cli_parser().parse_args(
            ["run", "EXP-F1", "--full", "--seed", "3",
             "--set", "steps=7", "--json"]
        )
        assert args.command == "run"
        assert args.ids == ["EXP-F1"]
        assert args.full
        assert args.seed == 3
        assert args.overrides == ["steps=7"]
        assert args.json

    def test_kernel_flag_all_parsers(self):
        args = build_cli_parser().parse_args(
            ["run", "EXP-T222", "--kernel", "fused"]
        )
        assert args.kernel == "fused"
        args = build_cli_parser().parse_args(
            ["sweep", "EXP-T222", "--set", "n=24,36", "--kernel", "numpy"]
        )
        assert args.kernel == "numpy"
        legacy = build_parser().parse_args(["EXP-T222", "--kernel", "jit"])
        assert legacy.kernel == "jit"
        # a misplaced value-taking --kernel must not break legacy routing
        from repro.cli import _is_legacy

        assert not _is_legacy(["--kernel", "fused", "run"])

    def test_kernel_reaches_provenance(self, capsys):
        assert main(
            ["run", "EXP-T221", "--kernel", "fused",
             "--set", "replicas=2", "--set", "sizes=8", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["provenance"]["parameters"]["kernel"] == "fused"
        assert payload[0]["spec"]["kernel"] == "fused"

    def test_subcommand_diff_flags(self):
        args = build_cli_parser().parse_args(
            ["diff", "a.json", "b.json", "--rel-tol", "0.5"]
        )
        assert args.command == "diff"
        assert args.left == "a.json"
        assert args.right == "b.json"
        assert args.rel_tol == 0.5


class TestLegacyShim:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_id_fails(self, capsys):
        assert main(["EXP-NOPE"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err

    def test_runs_figure_experiment(self, capsys):
        assert main(["EXP-F1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "EXP-F1" in out

    def test_markdown_rendering(self, capsys):
        assert main(["EXP-F4", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| t |" in out


class TestRunCommand:
    def test_run_prints_tables(self, capsys):
        assert main(["run", "EXP-F4"]) == 0
        out = capsys.readouterr().out
        assert "EXP-F4" in out
        assert "Figure 4" in out

    def test_run_json_payload(self, capsys):
        assert main(["run", "EXP-F4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        (entry,) = payload
        assert entry["spec"]["experiment_id"] == "EXP-F4"
        assert entry["provenance"]["version"]
        assert entry["provenance"]["graph_hashes"]
        assert entry["tables"][0]["title"].startswith("Figure 4")

    def test_run_unknown_id(self, capsys):
        assert main(["run", "EXP-NOPE"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err

    def test_run_unknown_override_fails_cleanly(self, capsys):
        assert main(["run", "EXP-F4", "--set", "bogus=1"]) == 2
        assert "no parameter 'bogus'" in capsys.readouterr().err

    def test_run_set_overrides_declared_param(self, capsys):
        assert main(["run", "EXP-F1", "--set", "steps=5", "--json"]) == 0
        (entry,) = json.loads(capsys.readouterr().out)
        assert entry["provenance"]["parameters"]["steps"] == 5

    def test_run_matches_legacy_at_fixed_seed(self, capsys):
        assert main(["run", "EXP-F1", "--seed", "4"]) == 0
        new_out = capsys.readouterr().out
        assert main(["EXP-F1", "--seed", "4"]) == 0
        legacy_out = capsys.readouterr().out
        strip = lambda text: [
            line for line in text.splitlines() if not line.startswith("### ")
        ]
        assert strip(new_out) == strip(legacy_out)

    def test_run_save_archives_to_store(self, tmp_path, capsys):
        assert main(["run", "EXP-F4", "--save", str(tmp_path)]) == 0
        assert (tmp_path / "manifest.json").exists()
        assert "saved ->" in capsys.readouterr().out

    def test_run_all_validates_overrides_before_executing(self, capsys):
        # 'steps' is declared by EXP-F1 but not EXP-F4: the batch must
        # fail up front, before any experiment runs or archives.
        assert main(["run", "EXP-F1", "EXP-F4", "--set", "steps=5"]) == 2
        captured = capsys.readouterr()
        assert "### EXP-F1" not in captured.out
        assert "no parameter 'steps'" in captured.err

    def test_flag_before_subcommand_gets_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--seed", "3", "run", "EXP-F4"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "run" in err and "usage" in err.lower()


class TestListCommand:
    def test_list_text(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in experiment_ids():
            assert key in out

    def test_list_json_schema(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_id = {entry["id"]: entry for entry in payload}
        assert set(by_id) == set(experiment_ids())
        t222 = by_id["EXP-T222"]
        assert t222["params"]["engine"]["choices"] == ["batch", "loop"]
        assert t222["presets"]["fast"]["n"] == 36
        assert t222["presets"]["full"]["n"] == 100


class TestSweepCommand:
    def test_sweep_runs_grid(self, capsys):
        assert main(["sweep", "EXP-F1", "--set", "steps=4,6"]) == 0
        out = capsys.readouterr().out
        assert "sweep summary" in out

    def test_sweep_requires_axis(self, capsys):
        assert main(["sweep", "EXP-F1", "--set", "steps=4"]) == 2
        assert "axis" in capsys.readouterr().err

    def test_sweep_json(self, capsys):
        assert main(["sweep", "EXP-F1", "--set", "steps=4,6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["results"]) == 2
        assert payload["summary"]["columns"][0] == "steps"

    def test_sweep_commas_fix_list_typed_params(self, capsys):
        # For a list-typed parameter a comma builds ONE value (as under
        # `run`); the sweep axis must come from another parameter.
        assert main(["sweep", "EXP-T221", "--set", "sizes=8,12",
                     "--set", "replicas=1,2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["columns"][0] == "replicas"
        assert [r["provenance"]["parameters"]["sizes"]
                for r in payload["results"]] == [[8, 12], [8, 12]]

    def test_sweep_semicolon_sweeps_list_typed_params(self, capsys):
        assert main(["sweep", "EXP-F1", "--set", "steps=4,6", "--json"]) == 0
        capsys.readouterr()
        assert main(["sweep", "EXP-T221", "--set", "sizes=8;12",
                     "--set", "replicas=1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["provenance"]["parameters"]["sizes"]
                for r in payload["results"]] == [[8], [12]]


class TestDiffCommand:
    def _save_one(self, tmp_path, capsys, seed="0"):
        assert main(["run", "EXP-F4", "--seed", seed,
                     "--save", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_self_diff_exits_zero(self, tmp_path, capsys):
        self._save_one(tmp_path, capsys)
        path = str(tmp_path / "EXP-F4.fast.s0.json")
        assert main(["diff", path, path]) == 0
        assert "match" in capsys.readouterr().out

    def test_diff_by_id_with_store(self, tmp_path, capsys):
        self._save_one(tmp_path, capsys)
        assert main(["diff", "EXP-F4", "EXP-F4", "--store", str(tmp_path)]) == 0

    def test_diff_detects_drift(self, tmp_path, capsys):
        self._save_one(tmp_path, capsys)
        path = tmp_path / "EXP-F4.fast.s0.json"
        payload = json.loads(path.read_text())
        payload["tables"][0]["rows"][0][1] = 1e6
        other = tmp_path / "tampered.json"
        other.write_text(json.dumps(payload))
        assert main(["diff", str(path), str(other)]) == 1
        assert "->" in capsys.readouterr().out

    def test_diff_missing_store_errors(self, capsys):
        assert main(["diff", "EXP-F4", "EXP-F4"]) == 2
        assert "--store" in capsys.readouterr().err

    def test_diff_reports_missing_artefact_file_not_unknown_id(
        self, tmp_path, capsys
    ):
        self._save_one(tmp_path, capsys)
        (tmp_path / "EXP-F4.fast.s0.json").unlink()
        assert main(["diff", "EXP-F4.fast.s0", "EXP-F4.fast.s0",
                     "--store", str(tmp_path)]) == 2
        assert "missing" in capsys.readouterr().err


class TestRegistryIntegrity:
    """The decorator registry, DESIGN.md and the presets stay in sync."""

    def test_legacy_mapping_mirrors_registry(self):
        assert list(EXPERIMENTS) == list(REGISTRY)
        for key, runner in EXPERIMENTS.items():
            assert runner.experiment is REGISTRY[key]

    def test_all_ids_documented_in_design(self):
        with open("DESIGN.md", encoding="utf-8") as handle:
            design = handle.read()
        for key in experiment_ids():
            assert key in design, f"{key} missing from DESIGN.md"

    def test_design_index_rows_match_registry(self):
        """Every `| EXP-... |` row of the DESIGN.md index is registered."""
        with open("DESIGN.md", encoding="utf-8") as handle:
            design = handle.read()
        indexed = re.findall(r"^\| (EXP-[A-Z0-9]+) \|", design, re.MULTILINE)
        assert indexed, "DESIGN.md experiment index not found"
        assert set(indexed) == set(experiment_ids())

    def test_every_experiment_declares_both_presets(self):
        for exp in all_experiments():
            for preset in PRESETS:
                assert preset in exp.presets, (exp.id, preset)
                # Resolution must succeed: presets + defaults cover params.
                resolved = exp.resolve(preset)
                assert set(resolved) == set(exp.params), exp.id

    def test_preset_keys_are_declared_params(self):
        for exp in all_experiments():
            for preset, values in exp.presets.items():
                unknown = set(values) - set(exp.params)
                assert not unknown, (exp.id, preset, unknown)

    def test_engine_declared_only_by_monte_carlo_runners(self):
        """Engine selection: the nine MC runners plus the dual workloads."""
        with_engine = {
            exp.id for exp in all_experiments() if exp.accepts_engine
        }
        assert with_engine == {
            "EXP-T221", "EXP-T221K", "EXP-T221LB", "EXP-T222", "EXP-T241",
            "EXP-T242", "EXP-MOM", "EXP-IRR", "EXP-ABL",
            "EXP-F1", "EXP-F4", "EXP-L57", "EXP-COAL",
        }

    def test_legacy_runners_accept_fast_and_seed(self):
        """The decorator wrappers keep the historical call convention."""
        import inspect

        for key, runner in EXPERIMENTS.items():
            signature = inspect.signature(runner, follow_wrapped=False)
            assert "fast" in signature.parameters, key
            assert "seed" in signature.parameters, key
        # And the convention actually executes (cheapest experiment).
        assert EXPERIMENTS["EXP-F4"](fast=True, seed=0)


class TestJobServiceParsers:
    def test_serve_flags(self):
        args = build_cli_parser().parse_args(
            ["serve", "--root", "jobs/", "--workers", "3",
             "--heartbeat-timeout", "2.5", "--until-idle", "--timeout", "9"]
        )
        assert args.command == "serve"
        assert args.root == "jobs/"
        assert args.workers == 3
        assert args.heartbeat_timeout == 2.5
        assert args.until_idle
        assert args.timeout == 9.0

    def test_submit_mirrors_run_flags(self):
        args = build_cli_parser().parse_args(
            ["submit", "EXP-F1", "--root", "jobs/", "--seed", "5",
             "--set", "steps=7", "--trace", "--max-retries", "1",
             "--wait", "--timeout", "30", "--json"]
        )
        assert args.command == "submit"
        assert args.ids == ["EXP-F1"]
        assert args.seed == 5
        assert args.overrides == ["steps=7"]
        assert args.trace and args.wait and args.json
        assert args.max_retries == 1

    def test_status_fetch_jobs_flags(self):
        args = build_cli_parser().parse_args(["status", "j0ddc0ffee"])
        assert args.command == "status" and args.job == "j0ddc0ffee"
        args = build_cli_parser().parse_args(
            ["fetch", "jab", "--wait", "--timeout", "4", "--json"]
        )
        assert args.command == "fetch" and args.wait and args.timeout == 4.0
        args = build_cli_parser().parse_args(["jobs", "list", "--json"])
        assert args.command == "jobs" and args.action == "list"
        args = build_cli_parser().parse_args(["jobs", "cancel", "jab"])
        assert args.action == "cancel" and args.job == "jab"
        args = build_cli_parser().parse_args(["jobs", "stop"])
        assert args.action == "stop"

    def test_submit_timeout_s_flag(self):
        args = build_cli_parser().parse_args(
            ["submit", "EXP-F1", "--timeout-s", "2.5"]
        )
        assert args.timeout_s == 2.5
        assert build_cli_parser().parse_args(
            ["submit", "EXP-F1"]
        ).timeout_s is None

    def test_fsck_flags(self):
        args = build_cli_parser().parse_args(
            ["fsck", "--root", "jobs/", "--cache", "c/", "--repair",
             "--grace", "0", "--json"]
        )
        assert args.command == "fsck"
        assert args.root == "jobs/"
        assert args.cache == "c/"
        assert args.repair and args.json
        assert args.grace == 0.0


class TestJobServiceCommands:
    """Inline-worker coverage; full subprocess E2E lives in test_jobs.py."""

    @staticmethod
    def _drain(root):
        from repro.jobs import Worker

        Worker(root, poll=0.01).run(idle_exit=0.05)

    def test_submit_validates_before_enqueueing(self, tmp_path, capsys):
        root = str(tmp_path)
        assert main(["submit", "EXP-NOPE", "--root", root]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err
        assert main(["submit", "EXP-F4", "--set", "bogus=1",
                     "--root", root]) == 2
        assert "no parameter 'bogus'" in capsys.readouterr().err
        from repro.jobs import JobQueue

        assert JobQueue(root).jobs() == []  # nothing leaked into the queue

    def test_submit_status_fetch_round_trip(self, tmp_path, capsys):
        root = str(tmp_path)
        assert main(["submit", "EXP-F4", "--root", root, "--json"]) == 0
        [entry] = json.loads(capsys.readouterr().out)
        assert entry["state"] == "queued"
        self._drain(root)
        assert main(["status", entry["job"], "--root", root, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["state"] == "done"
        assert main(["fetch", entry["job"], "--root", root, "--json"]) == 0
        fetched = json.loads(capsys.readouterr().out)
        assert fetched["spec"]["experiment_id"] == "EXP-F4"
        assert fetched["tables"][0]["title"].startswith("Figure 4")

    def test_duplicate_submission_reports_coalescence(self, tmp_path, capsys):
        root = str(tmp_path)
        assert main(["submit", "EXP-F4", "--root", root, "--json"]) == 0
        capsys.readouterr()
        assert main(["submit", "EXP-F4", "--root", root, "--json"]) == 0
        [entry] = json.loads(capsys.readouterr().out)
        assert entry["state"] == "coalesced"
        assert entry["coalesced_into"]

    def test_jobs_list_cancel_and_stop(self, tmp_path, capsys):
        root = str(tmp_path)
        assert main(["submit", "EXP-F4", "--root", root, "--json"]) == 0
        [entry] = json.loads(capsys.readouterr().out)
        assert main(["jobs", "list", "--root", root, "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["stats"]["jobs"] == 1
        assert listing["jobs"][0]["id"] == entry["job"]
        assert main(["jobs", "cancel", entry["job"], "--root", root]) == 0
        assert "cancelled" in capsys.readouterr().out
        assert main(["jobs", "stop", "--root", root]) == 0
        capsys.readouterr()
        from repro.jobs import JobQueue

        assert JobQueue(root).stop_requested()

    def test_fetch_unfinished_job_errors(self, tmp_path, capsys):
        root = str(tmp_path)
        assert main(["submit", "EXP-F4", "--root", root, "--json"]) == 0
        [entry] = json.loads(capsys.readouterr().out)
        assert main(["fetch", entry["job"], "--root", root]) == 2
        assert "not done" in capsys.readouterr().err

    def test_submit_timeout_s_lands_on_spec(self, tmp_path, capsys):
        root = str(tmp_path)
        assert main(["submit", "EXP-F4", "--root", root,
                     "--timeout-s", "7", "--json"]) == 0
        [entry] = json.loads(capsys.readouterr().out)
        from repro.jobs import JobQueue

        job = JobQueue(root).get(entry["job"])
        assert job.spec.timeout_s == 7.0


class TestFsckCommand:
    def test_clean_root_exits_zero(self, tmp_path, capsys):
        root = str(tmp_path / "jobs")
        assert main(["submit", "EXP-F4", "--root", root, "--json"]) == 0
        capsys.readouterr()
        from repro.jobs import Worker

        Worker(root, poll=0.01).run(idle_exit=0.05)
        assert main(["fsck", "--root", root, "--grace", "0"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out and "-> clean" in out

    def test_break_detect_repair_cycle(self, tmp_path, capsys):
        root = tmp_path / "jobs"
        assert main(["submit", "EXP-F4", "--root", str(root), "--json"]) == 0
        capsys.readouterr()
        (root / "queued" / "jtorn.json").write_text('{"torn": ')

        # Read-only: report the damage, exit nonzero, touch nothing.
        assert main(["fsck", "--root", str(root), "--grace", "0"]) == 1
        out = capsys.readouterr().out
        assert "unparseable record queued/jtorn.json" in out
        assert "-> NOT clean" in out
        assert (root / "queued" / "jtorn.json").exists()

        # Repair: fix it, report convergence, exit zero.
        assert main(["fsck", "--root", str(root), "--grace", "0",
                     "--repair"]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out and "-> clean" in out
        assert not (root / "queued" / "jtorn.json").exists()
        assert (root / "corrupt" / "jtorn.json").exists()  # set aside

        assert main(["fsck", "--root", str(root), "--grace", "0"]) == 0
        capsys.readouterr()

    def test_json_report(self, tmp_path, capsys):
        root = str(tmp_path / "jobs")
        from repro.jobs import JobQueue

        JobQueue(root).ensure_layout()
        assert main(["fsck", "--root", root, "--grace", "0", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True
        assert report["findings"] == []
        assert "queue" in report and "store" in report
