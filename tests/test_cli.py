"""Tests for the CLI entry point."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.ids == []
        assert not args.slow
        assert args.seed == 0

    def test_id_and_flags(self):
        args = build_parser().parse_args(["EXP-F1", "--slow", "--seed", "9"])
        assert args.ids == ["EXP-F1"]
        assert args.slow
        assert args.seed == 9


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_id_fails(self, capsys):
        assert main(["EXP-NOPE"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err

    def test_runs_figure_experiment(self, capsys):
        assert main(["EXP-F1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "EXP-F1" in out

    def test_markdown_rendering(self, capsys):
        assert main(["EXP-F4", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| t |" in out


class TestRegistryIntegrity:
    def test_all_ids_documented_in_design(self):
        with open("DESIGN.md", encoding="utf-8") as handle:
            design = handle.read()
        for key in EXPERIMENTS:
            assert key in design, f"{key} missing from DESIGN.md"

    def test_runners_accept_fast_and_seed(self):
        import inspect

        for key, runner in EXPERIMENTS.items():
            signature = inspect.signature(runner)
            assert "fast" in signature.parameters, key
            assert "seed" in signature.parameters, key
