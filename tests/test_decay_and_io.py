"""Tests for decay fitting and result persistence."""

import numpy as np
import pytest

from repro.analysis.decay import DecayFit, decay_summary, fit_decay_rate
from repro.core.node_model import NodeModel
from repro.core.runner import Trajectory, record_trajectory
from repro.exceptions import ParameterError
from repro.graphs.spectral import second_walk_eigenpair
from repro.io import (
    ResultBundle,
    ResultsIOError,
    diff_tables,
    load_all,
    load_bundle,
    save_bundle,
)
from repro.sim.results import ResultTable
from repro.theory.contraction import node_model_contraction_factor


def synthetic_trajectory(rate: float, phi0: float = 1.0, points: int = 20) -> Trajectory:
    times = np.arange(points) * 100
    phi = phi0 * np.exp(-rate * times)
    zeros = np.zeros(points)
    return Trajectory(
        times=times, phi=phi, discrepancy=zeros,
        simple_average=zeros, weighted_average=zeros,
    )


class TestDecayFit:
    def test_recovers_exact_exponential(self):
        fit = fit_decay_rate(synthetic_trajectory(rate=1e-3))
        assert fit.rate == pytest.approx(1e-3, rel=1e-9)
        assert fit.phi0 == pytest.approx(1.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_half_life(self):
        fit = DecayFit(rate=np.log(2.0), phi0=1.0, r_squared=1.0)
        assert fit.half_life == pytest.approx(1.0)
        assert DecayFit(rate=0.0, phi0=1.0, r_squared=1.0).half_life == np.inf

    def test_factor(self):
        fit = DecayFit(rate=0.1, phi0=1.0, r_squared=1.0)
        assert fit.factor() == pytest.approx(np.exp(-0.1))

    def test_floor_samples_dropped(self):
        trajectory = synthetic_trajectory(rate=2e-3, points=40)
        trajectory.phi[-10:] = 1e-16  # noise floor
        fit = fit_decay_rate(trajectory, floor=1e-13)
        assert fit.rate == pytest.approx(2e-3, rel=1e-6)

    def test_too_few_points_raises(self):
        trajectory = synthetic_trajectory(rate=1.0, points=3)
        trajectory.phi[:] = 1e-20
        with pytest.raises(ParameterError):
            fit_decay_rate(trajectory)

    def test_real_process_decay_at_least_theoretical(self, small_regular, rng):
        """Measured phi decay should not be slower than the Prop B.1 bound
        (averaged over a long run)."""
        initial = rng.normal(size=10)
        process = NodeModel(small_regular, initial, alpha=0.5, k=1, seed=1)
        # Short sampling interval: phi hits the float noise floor after a
        # few thousand steps on this 10-node expander.
        trajectory = record_trajectory(process, steps=4_000, sample_every=200)
        fit = fit_decay_rate(trajectory)
        lambda2, _ = second_walk_eigenpair(small_regular)
        factor = node_model_contraction_factor(10, lambda2, 0.5, 1)
        summary = decay_summary(trajectory, factor)
        assert summary.rate_ratio > 0.8
        assert fit.r_squared > 0.8

    def test_decay_summary_validation(self):
        with pytest.raises(ParameterError):
            decay_summary(synthetic_trajectory(1e-3), theoretical_factor=1.0)


class TestResultsIO:
    def make_bundle(self) -> ResultBundle:
        table = ResultTable("demo", ["x", "y"])
        table.add_row(1, 2.5)
        table.add_note("a note")
        return ResultBundle(
            experiment_id="EXP-F1", seed=3, fast=True, tables=[table]
        )

    def test_save_load_roundtrip(self, tmp_path):
        bundle = self.make_bundle()
        path = save_bundle(bundle, tmp_path)
        assert path.name == "EXP-F1.3.fast.json"
        loaded = load_bundle(path)
        assert loaded.experiment_id == "EXP-F1"
        assert loaded.seed == 3
        assert loaded.fast
        assert loaded.tables[0].rows == [[1, 2.5]]
        assert loaded.tables[0].notes == ["a note"]

    def test_overwrite_same_configuration(self, tmp_path):
        bundle = self.make_bundle()
        save_bundle(bundle, tmp_path)
        bundle.tables[0].add_row(2, 3.5)
        save_bundle(bundle, tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == 1
        assert len(load_all(tmp_path)[0].tables[0].rows) == 2

    def test_load_all_sorted(self, tmp_path):
        for experiment_id in ("EXP-T222", "EXP-F1"):
            save_bundle(
                ResultBundle(experiment_id, 0, True, []), tmp_path
            )
        bundles = load_all(tmp_path)
        assert [b.experiment_id for b in bundles] == ["EXP-F1", "EXP-T222"]

    def test_load_all_empty_directory(self, tmp_path):
        assert load_all(tmp_path / "nothing") == []

    def test_missing_file(self, tmp_path):
        with pytest.raises(ResultsIOError):
            load_bundle(tmp_path / "nope.json")

    def test_malformed_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ResultsIOError):
            load_bundle(bad)

    def test_malformed_payload(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"experiment_id": "X"}')
        with pytest.raises(ResultsIOError):
            load_bundle(bad)


class TestDiffTables:
    def test_identical_tables(self):
        a = ResultTable("t", ["x"], rows=[[1.0]])
        b = ResultTable("t", ["x"], rows=[[1.0]])
        assert diff_tables(a, b) == []

    def test_within_tolerance(self):
        a = ResultTable("t", ["x"], rows=[[1.0]])
        b = ResultTable("t", ["x"], rows=[[1.1]])
        assert diff_tables(a, b, rel_tol=0.25) == []

    def test_numeric_drift_detected(self):
        a = ResultTable("t", ["x"], rows=[[1.0]])
        b = ResultTable("t", ["x"], rows=[[2.0]])
        problems = diff_tables(a, b)
        assert len(problems) == 1
        assert "column 'x'" in problems[0]

    def test_structural_changes_detected(self):
        a = ResultTable("t", ["x"], rows=[[1.0]])
        b = ResultTable("t", ["y"], rows=[[1.0]])
        assert "columns changed" in diff_tables(a, b)[0]
        c = ResultTable("t", ["x"], rows=[[1.0], [2.0]])
        assert "row count changed" in diff_tables(a, c)[0]

    def test_bool_cells_compared_exactly(self):
        a = ResultTable("t", ["ok"], rows=[[True]])
        b = ResultTable("t", ["ok"], rows=[[False]])
        assert len(diff_tables(a, b)) == 1


class TestCliSave:
    def test_cli_save_writes_bundle(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["EXP-F4", "--save", str(tmp_path)]) == 0
        bundles = load_all(tmp_path)
        assert len(bundles) == 1
        assert bundles[0].experiment_id == "EXP-F4"
        assert "saved ->" in capsys.readouterr().out


class TestBundleStoreInterop:
    """The flat io layer and the ArtifactStore share one table codec."""

    def test_json_payload_roundtrip_without_disk(self):
        import json

        table = ResultTable("demo", ["x", "ok"])
        table.add_row(1.25, True)
        bundle = ResultBundle("EXP-F1", seed=4, fast=False, tables=[table])
        payload = json.loads(json.dumps(bundle.to_payload()))
        rebuilt = ResultBundle.from_payload(payload)
        assert rebuilt.tables[0] == table
        assert rebuilt.seed == 4 and not rebuilt.fast

    def test_saved_bundle_absorbed_by_store(self, tmp_path):
        from repro.api import ArtifactStore
        from repro.api.spec import RunSpec

        table = ResultTable("demo", ["x"])
        table.add_row(3)
        bundle = ResultBundle("EXP-F1", seed=2, fast=True, tables=[table])
        save_bundle(bundle, tmp_path / "bundles")
        store = ArtifactStore(tmp_path / "store")
        for loaded in load_all(tmp_path / "bundles"):
            store.import_bundle(loaded)
        result = store.load_spec(RunSpec("EXP-F1", seed=2))
        assert result.tables[0] == table
        # The absorbed run is diffable like any native artefact.
        assert store.diff(result, result) == []

    def test_diff_tables_mixed_cell_types(self):
        a = ResultTable("t", ["label", "v"], rows=[["x", 1.0]])
        b = ResultTable("t", ["label", "v"], rows=[["y", 1.0]])
        problems = diff_tables(a, b)
        assert len(problems) == 1 and "label" in problems[0]
