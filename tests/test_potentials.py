"""Tests for the potential functions and the incremental tracker."""

import numpy as np
import pytest

from repro.core.potentials import (
    PotentialTracker,
    discrepancy,
    phi_pi,
    phi_pi_pairwise,
    phi_uniform,
)


@pytest.fixture
def pi_uniform():
    return np.full(5, 0.2)


@pytest.fixture
def pi_weighted():
    pi = np.array([0.4, 0.3, 0.1, 0.1, 0.1])
    return pi


class TestPhi:
    def test_constant_vector_has_zero_phi(self, pi_weighted):
        assert phi_pi(pi_weighted, np.full(5, 3.7)) == pytest.approx(0.0)

    def test_matches_pairwise_form(self, pi_weighted, rng):
        values = rng.normal(size=5)
        assert phi_pi(pi_weighted, values) == pytest.approx(
            phi_pi_pairwise(pi_weighted, values)
        )

    def test_matches_pairwise_form_uniform(self, pi_uniform, rng):
        values = rng.normal(size=5)
        assert phi_pi(pi_uniform, values) == pytest.approx(
            phi_pi_pairwise(pi_uniform, values)
        )

    def test_phi_nonnegative(self, pi_weighted, rng):
        for _ in range(20):
            values = rng.normal(size=5) * rng.uniform(0.1, 100)
            assert phi_pi(pi_weighted, values) >= 0.0

    def test_phi_scale_quadratic(self, pi_weighted, rng):
        values = rng.normal(size=5)
        assert phi_pi(pi_weighted, 3.0 * values) == pytest.approx(
            9.0 * phi_pi(pi_weighted, values)
        )

    def test_phi_shift_invariant(self, pi_weighted, rng):
        values = rng.normal(size=5)
        assert phi_pi(pi_weighted, values + 11.0) == pytest.approx(
            phi_pi(pi_weighted, values)
        )

    def test_phi_uniform_known_value(self):
        values = np.array([1.0, -1.0])
        # sum x^2 - (sum x)^2 / n = 2 - 0 = 2.
        assert phi_uniform(values) == pytest.approx(2.0)

    def test_phi_uniform_equals_pairwise_definition(self, rng):
        values = rng.normal(size=7)
        n = len(values)
        pairwise = sum(
            (values[x] - values[y]) ** 2 for x in range(n) for y in range(n)
        ) / (2 * n)
        assert phi_uniform(values) == pytest.approx(pairwise)

    def test_discrepancy(self):
        assert discrepancy(np.array([3.0, -1.0, 2.0])) == pytest.approx(4.0)


class TestTracker:
    def test_initial_state_matches_direct(self, pi_weighted, rng):
        values = rng.normal(size=5)
        tracker = PotentialTracker(pi_weighted, values)
        assert tracker.phi == pytest.approx(phi_pi(pi_weighted, values))
        assert tracker.weighted_mean == pytest.approx(float(np.sum(pi_weighted * values)))

    def test_update_tracks_single_coordinate_change(self, pi_weighted, rng):
        values = rng.normal(size=5)
        tracker = PotentialTracker(pi_weighted, values)
        old = values[2]
        values[2] = 4.2
        tracker.update(2, old, 4.2, values)
        assert tracker.phi == pytest.approx(phi_pi(pi_weighted, values))

    def test_many_updates_stay_exact(self, pi_weighted, rng):
        values = rng.normal(size=5)
        tracker = PotentialTracker(pi_weighted, values)
        for _ in range(500):
            node = int(rng.integers(5))
            old = values[node]
            values[node] = rng.normal()
            tracker.update(node, old, values[node], values)
        assert tracker.phi == pytest.approx(phi_pi(pi_weighted, values), abs=1e-10)

    def test_periodic_resync(self, pi_uniform, rng):
        values = rng.normal(size=5)
        tracker = PotentialTracker(pi_uniform, values, resync_every=10)
        for _ in range(35):
            node = int(rng.integers(5))
            old = values[node]
            values[node] = rng.normal()
            tracker.update(node, old, values[node], values)
        assert tracker.phi == pytest.approx(phi_pi(pi_uniform, values), abs=1e-12)

    def test_reset(self, pi_uniform):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        tracker = PotentialTracker(pi_uniform, values)
        tracker.reset(np.zeros(5))
        assert tracker.phi == pytest.approx(0.0)

    def test_set_and_get_moments(self, pi_uniform):
        tracker = PotentialTracker(pi_uniform, np.zeros(5))
        tracker.set_moments(0.5, 0.7)
        s1, s2 = tracker.moments
        assert (s1, s2) == (0.5, 0.7)
        assert tracker.phi == pytest.approx(0.7 - 0.25)

    def test_invalid_resync_every(self, pi_uniform):
        with pytest.raises(ValueError):
            PotentialTracker(pi_uniform, np.zeros(5), resync_every=0)

    def test_phi_clamped_at_zero(self, pi_uniform):
        tracker = PotentialTracker(pi_uniform, np.full(5, 2.0))
        # Numerical noise could push s2 - s1^2 slightly negative; clamp.
        assert tracker.phi >= 0.0
