"""Tests for the exact finite-time variance (Q-chain powers)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.initial import center_simple, rademacher_values
from repro.core.node_model import NodeModel
from repro.exceptions import NotRegularError, ParameterError
from repro.rng import spawn
from repro.theory.exact import (
    exact_avg_variance,
    exact_limit_variance,
    exact_variance_trajectory,
)
from repro.theory.variance import variance_bounds


@pytest.fixture
def setup():
    graph = nx.cycle_graph(8)
    values = center_simple(rademacher_values(8, seed=2))
    return graph, values


class TestValidation:
    def test_requires_regular(self, star5):
        with pytest.raises(NotRegularError):
            exact_avg_variance(star5, np.zeros(6), 0.5, 1, 10)

    def test_requires_centered(self, setup):
        graph, _ = setup
        with pytest.raises(ParameterError, match="centered"):
            exact_avg_variance(graph, np.ones(8), 0.5, 1, 10)

    def test_times_must_be_sorted(self, setup):
        graph, values = setup
        with pytest.raises(ParameterError):
            exact_variance_trajectory(graph, values, 0.5, 1, [10, 5])
        with pytest.raises(ParameterError):
            exact_variance_trajectory(graph, values, 0.5, 1, [])
        with pytest.raises(ParameterError):
            exact_variance_trajectory(graph, values, 0.5, 1, [-1])


class TestStructure:
    def test_variance_at_zero_is_zero(self, setup):
        graph, values = setup
        assert exact_avg_variance(graph, values, 0.5, 1, 0) == pytest.approx(0.0)

    def test_trajectory_non_decreasing(self, setup):
        """The Prop 5.8 proof's remark: Var(Avg(t)) is non-decreasing."""
        graph, values = setup
        trajectory = exact_variance_trajectory(
            graph, values, 0.5, 1, [0, 1, 5, 20, 100, 500, 2000]
        )
        assert np.all(np.diff(trajectory) >= -1e-12)

    def test_converges_to_limit(self, setup):
        graph, values = setup
        late = exact_avg_variance(graph, values, 0.5, 1, 5_000)
        limit = exact_limit_variance(graph, values, 0.5, 1)
        assert late == pytest.approx(limit, rel=1e-6)

    def test_limit_equals_prop58_core(self, setup):
        """The t->infinity limit IS the Prop 5.8 core quadratic form."""
        graph, values = setup
        for k in (1, 2):
            limit = exact_limit_variance(graph, values, 0.5, k)
            bounds = variance_bounds(graph, values, alpha=0.5, k=k)
            assert limit == pytest.approx(bounds.core, abs=1e-12)

    def test_k2_differs_from_k1(self, setup):
        graph, values = setup
        v1 = exact_avg_variance(graph, values, 0.5, 1, 200)
        v2 = exact_avg_variance(graph, values, 0.5, 2, 200)
        assert v1 != pytest.approx(v2, rel=1e-3)


class TestAgainstSimulation:
    def test_one_step_variance_exact(self, setup):
        """At t = 1 the exact value can also be computed by enumerating the
        one-step law through brute-force replication."""
        graph, values = setup
        exact = exact_avg_variance(graph, values, 0.5, 1, 1)
        replicas = 60_000
        averages = np.empty(replicas)
        process = NodeModel(graph, values, alpha=0.5, k=1, seed=4)
        for i in range(replicas):
            process.reset()
            process.step()
            averages[i] = process.simple_average
        mc = float(averages.var(ddof=1))
        assert mc == pytest.approx(exact, rel=0.05)

    def test_mid_horizon_matches_monte_carlo(self, setup):
        graph, values = setup
        t = 100
        exact = exact_avg_variance(graph, values, 0.5, 2, t)
        replicas = 4_000
        averages = np.empty(replicas)
        for i, rng in enumerate(spawn(7, replicas)):
            process = NodeModel(graph, values, alpha=0.5, k=2, seed=rng)
            process.run(t)
            averages[i] = process.simple_average
        mc = float(averages.var(ddof=1))
        assert mc == pytest.approx(exact, rel=0.15)
