"""Tests for the ``repro.obs`` observability layer.

Covers the span/tracer primitives and their off-state contract, the
metric registry, chunk-boundary streams, telemetry assembly and export,
the instrumented engine stack (shard spans, merged multiprocessing
worker traces, counter folding), the visible jit fallback, trace/cache
CLI subcommands, and the disabled-tracer overhead bound the hot loops
rely on.
"""

import json
import time
import warnings

import networkx as nx
import numpy as np
import pytest

from repro.api import ArtifactStore, RunSpec, execute
from repro.cli import main
from repro.core.initial import center_simple, linear_ramp
from repro.engine import (
    BatchNodeModel,
    EngineSpec,
    sample_f_batch,
    sample_t_eps_batch,
)
from repro.engine import kernels as kernels_mod
from repro.engine.cache import ResultCache
from repro.graphs.adjacency import Adjacency
from repro.obs import (
    METRICS,
    TELEMETRY_SCHEMA,
    MetricRegistry,
    Span,
    StreamSet,
    Tracer,
    activate,
    active_tracer,
    build_telemetry,
    chrome_trace,
    render_summary,
    set_active,
    summarize,
    traced,
)

N = 16
ADJ = Adjacency.from_graph(nx.circulant_graph(N, [1, 2]))
INITIAL = center_simple(linear_ramp(N, 0.0, 1.0))


def _spec(kernel: str = "fused") -> EngineSpec:
    return EngineSpec(
        kind="node", adjacency=ADJ, initial_values=INITIAL, alpha=0.5,
        kernel=kernel,
    )


# ----------------------------------------------------------------------
# Span / Tracer primitives
# ----------------------------------------------------------------------
class TestSpan:
    def test_walk_depth_and_self_time(self):
        leaf = Span("leaf", 0.1, 0.2)
        root = Span("root", 0.0, 1.0, children=[leaf])
        assert [(s.name, d) for s, d in root.walk()] == [
            ("root", 0), ("leaf", 1)
        ]
        assert root.depth() == 2
        assert root.self_time == pytest.approx(0.8)

    def test_payload_round_trip(self):
        root = Span(
            "root", 0.5, 1.5, attrs={"k": 1},
            children=[Span("child", 0.6, 0.1)],
        )
        clone = Span.from_payload(root.to_payload())
        assert clone.name == "root"
        assert clone.attrs == {"k": 1}
        assert clone.children[0].name == "child"
        assert clone.children[0].duration == pytest.approx(0.1)

    def test_shifted_moves_whole_subtree(self):
        root = Span("root", 1.0, 2.0, children=[Span("child", 1.5, 0.5)])
        moved = root.shifted(10.0)
        assert moved.start == pytest.approx(11.0)
        assert moved.children[0].start == pytest.approx(11.5)
        # the original is untouched (shifted returns a copy)
        assert root.start == pytest.approx(1.0)


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer", kind="t"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        (root,) = tracer.roots
        assert root.name == "outer"
        assert root.attrs == {"kind": "t"}
        assert [c.name for c in root.children] == ["inner", "inner"]
        assert tracer.depth() == 2
        assert len(tracer.find("inner")) == 2

    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer.disabled
        first = tracer.span("a", big=1)
        second = tracer.span("b")
        assert first is second  # one reusable handle, no allocation
        with first:
            first.add(ignored=True)
        assert tracer.roots == []

    def test_span_budget_drops_but_keeps_timing(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.roots) == 2
        assert tracer.dropped == 3

    def test_attach_shifts_foreign_roots_under_parent(self):
        tracer = Tracer()
        with tracer.span("shard") as handle:
            pass
        foreign = Span("worker", 0.0, 1.0, children=[Span("block", 0.2, 0.1)])
        tracer.attach(handle.span, [foreign], offset=5.0)
        (worker,) = handle.span.children
        assert worker.start == pytest.approx(5.0)
        assert worker.children[0].start == pytest.approx(5.2)

    def test_record_streams_only_when_enabled(self):
        on, off = Tracer(), Tracer(enabled=False)
        on.record("phi", 1.0, 0.5)
        off.record("phi", 1.0, 0.5)
        assert bool(on.streams)
        assert not bool(off.streams)

    def test_activate_installs_and_restores(self):
        assert active_tracer() is Tracer.disabled
        tracer = Tracer()
        with activate(tracer):
            assert active_tracer() is tracer
        assert active_tracer() is Tracer.disabled

    def test_traced_decorator(self):
        @traced("wrapped", tag=3)
        def fn(x):
            return x + 1

        assert fn(1) == 2  # disabled: plain call
        tracer = Tracer()
        with activate(tracer):
            assert fn(2) == 3
        (root,) = tracer.roots
        assert root.name == "wrapped"
        assert root.attrs == {"tag": 3}


# ----------------------------------------------------------------------
# Metrics / streams
# ----------------------------------------------------------------------
class TestMetrics:
    def test_count_gauge_peak(self):
        reg = MetricRegistry()
        reg.count("c")
        reg.count("c", 4)
        reg.gauge("g", 1.5)
        reg.gauge("g", 0.5)
        reg.peak("p", 10)
        reg.peak("p", 3)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 0.5  # last write wins
        assert snap["peaks"]["p"] == 10  # raise-only
        assert reg.value("c") == 5
        assert reg.value("missing") == 0

    def test_delta_scopes_counters_to_a_run(self):
        reg = MetricRegistry()
        reg.count("a", 2)
        reg.count("b", 1)
        baseline = reg.snapshot()
        reg.count("a", 3)
        delta = reg.delta(baseline)
        assert delta["counters"] == {"a": 3}  # zero-delta 'b' dropped


class TestStreams:
    def test_series_appends_and_serialises(self):
        streams = StreamSet()
        streams.series("phi").append(10, 0.5)
        streams.series("phi").append(20, 0.25)
        payload = streams.to_payload()
        assert payload["series"]["phi"] == {"t": [10, 20], "value": [0.5, 0.25]}

    def test_histogram_accumulates_on_frozen_edges(self):
        streams = StreamSet()
        streams.histogram("rounds", np.array([1.0, 2.0, 3.0]), bins=4)
        first = streams.to_payload()["histograms"]["rounds"]
        streams.histogram("rounds", np.array([2.5, 100.0]))  # 100 clips
        second = streams.to_payload()["histograms"]["rounds"]
        assert second["bin_edges"] == first["bin_edges"]
        assert sum(second["counts"]) == 5


# ----------------------------------------------------------------------
# Telemetry assembly + export
# ----------------------------------------------------------------------
def _toy_telemetry() -> dict:
    tracer = Tracer()
    with activate(tracer), tracer.span("run"):
        with tracer.span("engine.shard", shard=0, replicas=4) as handle:
            pass
        tracer.attach(
            handle.span,
            [Span("engine.worker", 0.0, 0.5, attrs={"pid": 4242})],
            handle.span.start,
        )
        tracer.record("engine.phi_max", 10, 0.5)
    return build_telemetry(
        tracer,
        {"counters": {"cache.hits": 1, "cache.misses": 1,
                      "engine.blocks.fused": 7},
         "gauges": {}, "peaks": {"engine.state_peak_bytes": 1024.0}},
    )


class TestExport:
    def test_build_telemetry_block_shape(self):
        telemetry = _toy_telemetry()
        assert telemetry["schema"] == TELEMETRY_SCHEMA
        assert telemetry["dropped_spans"] == 0
        assert telemetry["counters"]["engine.blocks.fused"] == 7
        assert "engine.phi_max" in telemetry["streams"]["series"]
        json.dumps(telemetry)  # must be JSON-serialisable as-is

    def test_chrome_trace_events(self):
        trace = chrome_trace(_toy_telemetry())
        events = trace["traceEvents"]
        assert events[0]["ph"] == "M"  # counters metadata travels along
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {
            "run", "engine.shard", "engine.worker"
        }
        # the merged worker span lands on its own process track
        (worker,) = [e for e in complete if e["name"] == "engine.worker"]
        assert worker["pid"] == 4242
        assert all(e["dur"] >= 0 for e in complete)

    def test_summarize_and_render(self):
        summary = summarize(_toy_telemetry())
        assert summary["span_count"] == 3
        assert summary["depth"] == 3
        assert summary["cache"]["hit_rate"] == pytest.approx(0.5)
        assert summary["kernel"] == {"fused": 7}
        assert summary["shards"]["count"] == 1
        assert summary["shards"]["rows"][0]["workers"] == 1
        text = render_summary(summary)
        assert "wall time" in text
        assert "engine.shard" in text
        assert "kernel blocks  fused=7" in text


# ----------------------------------------------------------------------
# Instrumented engine: invariance, shard spans, worker merge
# ----------------------------------------------------------------------
class TestEngineTracing:
    @pytest.mark.parametrize("kernel", ["numpy", "fused"])
    def test_trajectories_bit_identical_with_tracing(self, kernel):
        def run():
            batch = BatchNodeModel(
                ADJ, INITIAL, 0.5, replicas=3, seed=77, kernel=kernel
            )
            batch.run(300)  # crosses the 256-round block boundary
            return batch.values.copy()

        plain = run()
        tracer = Tracer()
        with activate(tracer):
            traced_values = run()
        np.testing.assert_array_equal(plain, traced_values)

    def test_single_process_shard_spans_and_counters(self):
        baseline = METRICS.snapshot()
        tracer = Tracer()
        with activate(tracer):
            sample_t_eps_batch(
                _spec(), epsilon=1e-2, replicas=8, seed=5,
                max_steps=100_000, shard_size=4,
            )
        counters = METRICS.delta(baseline)["counters"]
        assert tracer.depth() == 2  # sample > shard (no cache, one process)
        shards = tracer.find("engine.shard")
        assert len(shards) == 2
        assert sum(s.attrs["replicas"] for s in shards) == 8
        assert counters["engine.replica_steps"] > 0
        assert counters["engine.blocks.fused"] >= 1
        assert "t_eps_rounds" in tracer.streams.to_payload()["histograms"]

    def test_worker_spans_merge_across_processes(self):
        spec = _spec()
        expected = sample_f_batch(
            spec, replicas=8, seed=11, discrepancy_tol=1e-3,
            shard_size=2, processes=2,
        )
        baseline = METRICS.snapshot()
        tracer = Tracer()
        with activate(tracer):
            out = sample_f_batch(
                spec, replicas=8, seed=11, discrepancy_tol=1e-3,
                shard_size=2, processes=2,
            )
        np.testing.assert_array_equal(out, expected)
        workers = tracer.find("engine.worker")
        assert len(workers) == 4  # one per shard, under its shard span
        assert all("pid" in w.attrs for w in workers)
        shards = tracer.find("engine.shard")
        assert all(
            any(c.name == "engine.worker" for c in s.children) for s in shards
        )
        # worker counters fold back into the parent registry
        counters = METRICS.delta(baseline)["counters"]
        assert counters["engine.replica_steps"] > 0
        assert counters["engine.blocks.fused"] >= 4

    def test_cache_spans_and_hit_counters(self, tmp_path):
        spec = _spec()
        cache = ResultCache(tmp_path)
        baseline = METRICS.snapshot()
        kwargs = dict(
            epsilon=1e-2, replicas=4, seed=9, max_steps=100_000, cache=cache
        )
        first = sample_t_eps_batch(spec, **kwargs)
        tracer = Tracer()
        with activate(tracer):
            second = sample_t_eps_batch(spec, **kwargs)
        np.testing.assert_array_equal(first, second)
        counters = METRICS.delta(baseline)["counters"]
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1
        assert counters["cache.bytes_written"] == first.nbytes
        (sample,) = tracer.find("engine.sample_t_eps")
        assert sample.attrs.get("cache") == "hit"
        assert tracer.find("cache.load")


# ----------------------------------------------------------------------
# Visible jit fallback
# ----------------------------------------------------------------------
class TestKernelFallback:
    def test_explicit_jit_without_numba_warns_once_and_counts(self, monkeypatch):
        monkeypatch.setitem(kernels_mod._NUMBA_STATE, "ok", False)
        monkeypatch.setattr(kernels_mod, "_FALLBACK_WARNED", False)
        before = METRICS.value("engine.kernel_fallback")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert kernels_mod.resolve_kernel("jit") == "fused"
            assert kernels_mod.resolve_kernel("jit") == "fused"
        raised = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(raised) == 1  # once per process, not per resolve
        assert "numba" in str(raised[0].message)
        assert METRICS.value("engine.kernel_fallback") == before + 2

    def test_auto_degrades_silently(self, monkeypatch):
        monkeypatch.setitem(kernels_mod._NUMBA_STATE, "ok", False)
        monkeypatch.setattr(kernels_mod, "_FALLBACK_WARNED", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert kernels_mod.resolve_kernel("auto") == "fused"
        assert not [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]


# ----------------------------------------------------------------------
# API: traced execution, persistence, provenance
# ----------------------------------------------------------------------
class TestApiTelemetry:
    def test_execute_with_trace_attaches_telemetry(self):
        result = execute(
            RunSpec("EXP-F1", overrides={"steps": 5}, seed=3, trace=True)
        )
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry["schema"] == TELEMETRY_SCHEMA
        summary = summarize(telemetry)
        assert summary["depth"] >= 3  # run > experiment > engine...
        names = {row["name"] for row in summary["top_spans"]}
        assert {"run", "experiment"} <= names
        assert result.provenance.kernel is not None

    def test_trace_never_changes_results_or_key(self):
        plain = execute(RunSpec("EXP-F1", overrides={"steps": 5}, seed=3))
        traced_run = execute(
            RunSpec("EXP-F1", overrides={"steps": 5}, seed=3, trace=True)
        )
        assert plain.spec.key() == traced_run.spec.key()
        assert plain.telemetry is None
        for old, new in zip(plain.tables, traced_run.tables):
            assert old.to_payload() == new.to_payload()

    def test_telemetry_survives_the_artifact_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        result = execute(
            RunSpec("EXP-F1", overrides={"steps": 5}, seed=3, trace=True)
        )
        store.save(result)
        loaded = store.load(result.spec.key())
        assert loaded.telemetry == result.telemetry


# ----------------------------------------------------------------------
# CLI: repro run --trace / trace summary / trace export / cache
# ----------------------------------------------------------------------
class TestCli:
    def _traced_artifact(self, tmp_path, capsys):
        assert main([
            "run", "EXP-F1", "--set", "steps=5", "--trace",
            "--save", str(tmp_path / "store"),
        ]) == 0
        capsys.readouterr()
        store = ArtifactStore(tmp_path / "store")
        (record,) = store.records()
        return str(tmp_path / "store" / record.file)

    def test_run_trace_json_carries_telemetry(self, capsys):
        assert main([
            "run", "EXP-F1", "--set", "steps=5", "--trace", "--json"
        ]) == 0
        (payload,) = json.loads(capsys.readouterr().out)
        assert payload["telemetry"]["schema"] == TELEMETRY_SCHEMA
        assert payload["telemetry"]["spans"]
        assert payload["provenance"]["kernel"] is not None

    def test_trace_summary_renders(self, tmp_path, capsys):
        artifact = self._traced_artifact(tmp_path, capsys)
        assert main(["trace", "summary", artifact]) == 0
        out = capsys.readouterr().out
        assert "wall time" in out
        assert "experiment" in out

    def test_trace_summary_json(self, tmp_path, capsys):
        artifact = self._traced_artifact(tmp_path, capsys)
        assert main(["trace", "summary", artifact, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["depth"] >= 3

    def test_trace_export_chrome_file(self, tmp_path, capsys):
        artifact = self._traced_artifact(tmp_path, capsys)
        out_path = tmp_path / "trace.json"
        assert main([
            "trace", "export", artifact, "--chrome", str(out_path)
        ]) == 0
        trace = json.loads(out_path.read_text())
        assert trace["traceEvents"]
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_trace_on_untraced_artifact_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "run", "EXP-F1", "--set", "steps=5",
            "--save", str(tmp_path / "store"),
        ]) == 0
        capsys.readouterr()
        store = ArtifactStore(tmp_path / "store")
        (record,) = store.records()
        artifact = str(tmp_path / "store" / record.file)
        assert main(["trace", "summary", artifact]) == 2
        assert "no telemetry" in capsys.readouterr().err

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        sample_t_eps_batch(
            _spec(), epsilon=1e-2, replicas=4, seed=21,
            max_steps=100_000, cache=cache,
        )
        assert main(["cache", "stats", str(tmp_path), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 0
        # --older-than keeps fresh entries ...
        assert main([
            "cache", "clear", str(tmp_path), "--older-than", "3600"
        ]) == 0
        assert "removed 0 entries" in capsys.readouterr().out
        assert len(list(tmp_path.glob("*.npy"))) == 1
        # ... a plain clear removes arrays and their sidecars
        assert main(["cache", "clear", str(tmp_path)]) == 0
        assert "removed 1 entry" in capsys.readouterr().out
        assert list(tmp_path.glob("*.npy")) == []
        assert list(tmp_path.glob("*.json")) == []

    def test_cache_stats_missing_dir(self, tmp_path, capsys):
        assert main([
            "cache", "stats", str(tmp_path / "nope")
        ]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_sweep_prints_slowest_cells(self, capsys):
        assert main(["sweep", "EXP-F1", "--set", "steps=4,6"]) == 0
        out = capsys.readouterr().out
        assert "slowest cells" in out

    def test_sweep_json_carries_timings(self, capsys):
        assert main([
            "sweep", "EXP-F1", "--set", "steps=4,6", "--json"
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        timings = payload["timings"]
        assert len(timings) == 2
        assert timings[0]["wall_time_s"] >= timings[1]["wall_time_s"]
        assert timings[0]["cell"]["steps"] in (4, 6)


# ----------------------------------------------------------------------
# Overhead: the disabled fast path is invisible on the fused hot loop
# ----------------------------------------------------------------------
def test_disabled_tracer_overhead_under_two_percent():
    """The off state must cost < 2% of a fused block.

    The fused path consults the disabled tracer a handful of times per
    256-round block (span open/close at chunk boundaries, hoisted
    ``enabled`` checks); 16 consultations per block is a generous upper
    bound.  Their measured unit cost must vanish against the block
    itself.
    """
    batch = BatchNodeModel(
        ADJ, INITIAL, 0.5, replicas=64, seed=1, kernel="fused"
    )
    batch.run(512)  # warm
    blocks = 20
    started = time.perf_counter()
    batch.run(256 * blocks)
    block_seconds = (time.perf_counter() - started) / blocks

    calls = 20_000
    started = time.perf_counter()
    for _ in range(calls):
        tracer = active_tracer()
        if tracer.enabled:  # the hoisted hot-loop guard
            pass
        with tracer.span("hot"):
            pass
    per_call = (time.perf_counter() - started) / calls

    overhead = 16 * per_call / block_seconds
    assert overhead < 0.02, (
        f"disabled-tracer overhead {overhead:.2%} of a fused block "
        f"(per-call {per_call * 1e9:.0f}ns, block {block_seconds * 1e3:.2f}ms)"
    )


def test_set_active_returns_previous():
    previous = set_active(Tracer.disabled)
    assert previous is Tracer.disabled
