"""Smoke tests for the experiment runners (cheap subset).

Heavy Monte-Carlo experiments are exercised through the benchmark
harness; here we run the fast, second-scale ones end to end and assert
the *shape* of their outputs (and the pass/fail flags they compute).
"""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    exp_coalescing,
    exp_fig_duality,
    exp_k_dependence,
    exp_lower_bound,
    exp_martingale,
    exp_qchain,
    exp_time_variance,
)


class TestRegistry:
    def test_expected_ids_present(self):
        expected = {
            "EXP-F1", "EXP-F4", "EXP-T221", "EXP-T221K", "EXP-T221LB",
            "EXP-T222", "EXP-T241", "EXP-T242", "EXP-L41", "EXP-L57",
            "EXP-PB1", "EXP-CE2", "EXP-PRICE", "EXP-MOM", "EXP-IRR",
            "EXP-ABL", "EXP-VT", "EXP-DYN", "EXP-DYNM", "EXP-COAL",
        }
        assert expected == set(EXPERIMENTS)


class TestFigureExperiments:
    def test_figure1_all_rows_match(self):
        tables = exp_fig_duality.run_figure1(fast=True, seed=0)
        figure_table = tables[0]
        assert all(figure_table.column("match"))

    def test_figure1_duality_rows_exact(self):
        tables = exp_fig_duality.run_figure1(fast=True, seed=0)
        random_table = tables[1]
        assert all(random_table.column("exact"))

    def test_figure4_all_rows_match(self):
        tables = exp_fig_duality.run_figure4(fast=True, seed=0)
        assert all(tables[0].column("match"))

    def test_engine_scale_duality_exact(self):
        tables = exp_fig_duality.run_figure1(fast=True, seed=0)
        assert all(tables[2].column("exact"))
        tables = exp_fig_duality.run_figure4(fast=True, seed=0)
        assert all(tables[1].column("exact"))


class TestQChainExperiment:
    def test_closed_form_errors_tiny(self):
        table = exp_qchain.run(fast=True, seed=0)[0]
        errors = table.column("max|closed-numeric|")
        assert max(errors) < 1e-10

    def test_irreversibility_pattern(self):
        table = exp_qchain.run(fast=True, seed=0)[0]
        ks = table.column("k")
        reversible = table.column("reversible")
        for k, rev in zip(ks, reversible):
            if k > 1:
                assert not rev


class TestCoalescingExperiment:
    def test_meeting_times_positive_and_ordered(self):
        tables = exp_coalescing.run(
            fast=True, seed=0, replicas=40, alphas=[0.0, 0.5]
        )
        meeting = tables[0]
        means = meeting.column("mean_T_coal")
        assert all(m > 0 for m in means)
        graphs = meeting.column("graph")
        # The cycle's walks take the longest to meet among the three.
        assert means[graphs.index("cycle")] == max(means)

    def test_lazy_slowdown_direction(self):
        tables = exp_coalescing.run(
            fast=True, seed=0, replicas=40, alphas=[0.0, 0.5]
        )
        slowdown = tables[1]
        factors = slowdown.column("x_vs_alpha0")
        assert factors[0] == 1.0
        assert factors[1] > 1.3  # ~2x in expectation at alpha = 0.5

    def test_exact_column_agrees_at_small_n(self):
        """At n = 11 every graph admits the absorbing-chain solve: the
        exact column fills in and sits inside the bootstrap CI."""
        tables = exp_coalescing.run(
            fast=True, seed=0, n=11, replicas=200, alphas=[0.0, 0.5]
        )
        meeting = tables[0]
        exact = meeting.column("exact_T_coal")
        assert all(value is not None and value > 0 for value in exact)
        assert all(meeting.column("exact_in_ci"))
        slowdown_exact = tables[1].column("exact_T_coal")
        assert slowdown_exact[1] == pytest.approx(2.0 * slowdown_exact[0])

    def test_exact_column_none_when_infeasible(self):
        """At the fast preset's n = 24 only the complete graph is
        solvable; the other cells stay None rather than crashing."""
        tables = exp_coalescing.run(
            fast=True, seed=0, replicas=30, alphas=[0.0]
        )
        meeting = tables[0]
        graphs = meeting.column("graph")
        exact = meeting.column("exact_T_coal")
        assert exact[graphs.index("cycle")] is None
        assert exact[graphs.index("complete")] == pytest.approx(23.0**2)

    def test_engine_exact_replaces_sampling(self):
        tables = exp_coalescing.run(
            fast=True, seed=0, n=11, replicas=3, alphas=[0.0, 0.5],
            engine="exact",
        )
        meeting = tables[0]
        # The replica column is filled with identical copies of the
        # expectation; only float summation noise separates the mean
        # (and se) from the exact cell.
        assert all(se < 1e-9 for se in meeting.column("se"))
        for mean, exact in zip(
            meeting.column("mean_T_coal"), meeting.column("exact_T_coal")
        ):
            assert mean == pytest.approx(exact, rel=1e-12)
        assert all(meeting.column("exact_in_ci"))

    def test_cycle_row_is_odd(self):
        """Even cycles are bipartite and have no alpha = 0 voter dual;
        the experiment must use an odd cycle (regression for the
        bipartite parity guard)."""
        tables = exp_coalescing.run(
            fast=True, seed=0, n=12, replicas=20, alphas=[0.5]
        )
        meeting = tables[0]
        graphs = meeting.column("graph")
        sizes = meeting.column("n")
        assert sizes[graphs.index("cycle")] == 11
        assert sizes[graphs.index("complete")] == 12


class TestMartingaleExperiment:
    def test_exact_drift_zero(self):
        tables = exp_martingale.run(fast=True, seed=0)
        exact = tables[0]
        assert max(exact.column("max_drift")) < 1e-12

    def test_empirical_z_scores_small(self):
        tables = exp_martingale.run(fast=True, seed=0)
        empirical = tables[1]
        assert max(abs(z) for z in empirical.column("z_score")) < 4.0


class TestKDependenceExperiment:
    def test_t_ratio_band(self):
        (table,) = exp_k_dependence.run(fast=True, seed=0)
        ratios = table.column("T(k)/T(1)")
        # The paper's claim: k barely matters — within [1/2 - noise, 1 + noise].
        assert min(ratios) > 0.35
        assert max(ratios) < 1.5


class TestLowerBoundExperiment:
    def test_ratios_bounded_away_from_zero(self):
        (table,) = exp_lower_bound.run(fast=True, seed=0)
        ratios = table.column("ratio")
        assert min(ratios) > 0.02
        assert max(ratios) < 10.0


class TestTimeVarianceExperiment:
    def test_all_bounds_hold(self):
        (table,) = exp_time_variance.run(fast=True, seed=0)
        assert all(table.column("ok"))

    def test_variance_grows_then_saturates(self):
        (table,) = exp_time_variance.run(fast=True, seed=0)
        node_rows = [r for r in table.rows if r[0].startswith("node")]
        variances = [r[2] for r in node_rows]
        assert variances[-1] >= variances[0]
