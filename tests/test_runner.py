"""Tests for trajectory recording and F sampling."""

import numpy as np
import pytest

from repro.core.node_model import NodeModel
from repro.core.runner import record_trajectory, sample_convergence_value
from repro.exceptions import ParameterError


class TestRecordTrajectory:
    def test_lengths_and_times(self, small_regular, rng):
        process = NodeModel(small_regular, rng.normal(size=10), alpha=0.5, seed=1)
        trajectory = record_trajectory(process, steps=100, sample_every=10)
        assert len(trajectory) == 11  # initial + 10 samples
        assert trajectory.times.tolist() == list(range(0, 101, 10))

    def test_without_initial(self, small_regular, rng):
        process = NodeModel(small_regular, rng.normal(size=10), alpha=0.5, seed=1)
        trajectory = record_trajectory(
            process, steps=50, sample_every=25, include_initial=False
        )
        assert trajectory.times.tolist() == [25, 50]

    def test_phi_decreases_overall(self, small_regular, rng):
        process = NodeModel(small_regular, rng.normal(size=10), alpha=0.5, seed=2)
        trajectory = record_trajectory(process, steps=20_000, sample_every=5_000)
        assert trajectory.phi[-1] < trajectory.phi[0] * 1e-3

    def test_discrepancy_non_increasing(self, small_regular, rng):
        process = NodeModel(small_regular, rng.normal(size=10), alpha=0.5, seed=3)
        trajectory = record_trajectory(process, steps=5_000, sample_every=500)
        assert np.all(np.diff(trajectory.discrepancy) <= 1e-12)

    def test_ragged_tail_handled(self, small_regular, rng):
        process = NodeModel(small_regular, rng.normal(size=10), alpha=0.5, seed=4)
        trajectory = record_trajectory(process, steps=25, sample_every=10)
        assert trajectory.times.tolist() == [0, 10, 20, 25]

    def test_validation(self, small_regular, rng):
        process = NodeModel(small_regular, rng.normal(size=10), alpha=0.5, seed=5)
        with pytest.raises(ParameterError):
            record_trajectory(process, steps=-1)
        with pytest.raises(ParameterError):
            record_trajectory(process, steps=10, sample_every=0)


class TestSampleConvergenceValue:
    def test_returns_hull_value(self, small_regular, rng):
        initial = rng.normal(size=10)

        def make():
            return NodeModel(small_regular, initial, alpha=0.5, seed=None)

        value = sample_convergence_value(make, discrepancy_tol=1e-8)
        assert initial.min() <= value <= initial.max()

    def test_fresh_processes_give_different_f(self, small_regular, rng):
        initial = rng.normal(size=10)
        seeds = iter(range(100, 110))

        def make():
            return NodeModel(small_regular, initial, alpha=0.5, seed=next(seeds))

        values = {round(sample_convergence_value(make), 12) for _ in range(5)}
        assert len(values) > 1  # F is genuinely random
