"""Tests for the named graph families."""

import networkx as nx
import pytest

from repro.exceptions import ParameterError
from repro.graphs import generators as gen


ALL_FAMILIES = sorted(gen.GRAPH_FAMILIES)


class TestRegistry:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_every_family_produces_connected_graph(self, family):
        n = {"petersen": 10, "torus": 16, "hypercube": 16, "barbell": 10,
             "two_cliques": 10}.get(family, 12)
        graph = gen.make_graph(family, n, **({"seed": 3} if family in
                 ("random_regular", "erdos_renyi", "random_geometric") else {}),
                 **({"d": 4} if family == "random_regular" else {}))
        assert nx.is_connected(graph)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_nodes_relabelled_to_range(self, family):
        n = {"petersen": 10, "torus": 9, "hypercube": 8, "barbell": 8,
             "two_cliques": 8}.get(family, 8)
        kwargs = {}
        if family in ("random_regular", "erdos_renyi", "random_geometric"):
            kwargs["seed"] = 5
        if family == "random_regular":
            kwargs["d"] = 3
        graph = gen.make_graph(family, n, **kwargs)
        assert sorted(graph.nodes()) == list(range(graph.number_of_nodes()))

    def test_unknown_family_raises(self):
        with pytest.raises(ParameterError, match="unknown graph family"):
            gen.make_graph("mobius", 10)


class TestSpecificShapes:
    def test_cycle_is_2_regular(self):
        graph = gen.cycle_graph(9)
        assert all(d == 2 for _, d in graph.degree())

    def test_complete_edge_count(self):
        graph = gen.complete_graph(7)
        assert graph.number_of_edges() == 21

    def test_star_degrees(self):
        graph = gen.star_graph(8)
        degrees = sorted(d for _, d in graph.degree())
        assert degrees == [1] * 7 + [7]

    def test_torus_is_4_regular(self):
        graph = gen.torus_graph(25)
        assert all(d == 4 for _, d in graph.degree())

    def test_torus_requires_square(self):
        with pytest.raises(ParameterError):
            gen.torus_graph(24)

    def test_torus_requires_r_at_least_3(self):
        with pytest.raises(ParameterError):
            gen.torus_graph(4)

    def test_hypercube_regular_log_degree(self):
        graph = gen.hypercube_graph(16)
        assert all(d == 4 for _, d in graph.degree())

    def test_hypercube_requires_power_of_two(self):
        with pytest.raises(ParameterError):
            gen.hypercube_graph(12)

    def test_random_regular_degree(self):
        graph = gen.random_regular_graph(20, 5, seed=1)
        assert all(d == 5 for _, d in graph.degree())

    def test_random_regular_parity_check(self):
        with pytest.raises(ParameterError):
            gen.random_regular_graph(9, 5, seed=1)

    def test_random_regular_needs_n_greater_than_d(self):
        with pytest.raises(ParameterError):
            gen.random_regular_graph(4, 4, seed=1)

    def test_erdos_renyi_connected_with_default_p(self):
        graph = gen.erdos_renyi_graph(40, seed=2)
        assert nx.is_connected(graph)

    def test_erdos_renyi_p_validation(self):
        with pytest.raises(ParameterError):
            gen.erdos_renyi_graph(10, p=1.5)

    def test_barbell_structure(self):
        graph = gen.barbell_graph(10)
        degrees = sorted(d for _, d in graph.degree())
        # two K5s joined by one edge: two nodes of degree 5, rest 4.
        assert degrees == [4] * 8 + [5] * 2

    def test_barbell_requires_even(self):
        with pytest.raises(ParameterError):
            gen.barbell_graph(9)

    def test_two_cliques_bridges(self):
        graph = gen.two_cliques_graph(10, bridges=2)
        assert graph.number_of_edges() == 2 * 10 + 2

    def test_two_cliques_bridge_bounds(self):
        with pytest.raises(ParameterError):
            gen.two_cliques_graph(10, bridges=0)

    def test_binary_tree_node_count(self):
        graph = gen.binary_tree_graph(11)
        assert graph.number_of_nodes() == 11
        assert nx.is_tree(graph)

    def test_petersen_shape(self):
        graph = gen.petersen_graph()
        assert graph.number_of_nodes() == 10
        assert all(d == 3 for _, d in graph.degree())

    def test_petersen_rejects_other_sizes(self):
        with pytest.raises(ParameterError):
            gen.petersen_graph(12)

    def test_lollipop_connected(self):
        graph = gen.lollipop_graph(11)
        assert nx.is_connected(graph)
        assert graph.number_of_nodes() == 11

    def test_random_geometric_connected(self):
        graph = gen.random_geometric_connected(30, seed=4)
        assert nx.is_connected(graph)

    def test_random_geometric_radius_validation(self):
        with pytest.raises(ParameterError):
            gen.random_geometric_connected(10, radius=-0.1)

    def test_path_minimum_size(self):
        with pytest.raises(ParameterError):
            gen.path_graph(1)


class TestDeterminism:
    def test_random_regular_seed_reproducible(self):
        a = gen.random_regular_graph(16, 4, seed=11)
        b = gen.random_regular_graph(16, 4, seed=11)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_erdos_renyi_seed_reproducible(self):
        a = gen.erdos_renyi_graph(25, seed=11)
        b = gen.erdos_renyi_graph(25, seed=11)
        assert sorted(a.edges()) == sorted(b.edges())
