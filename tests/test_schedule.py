"""Tests for recorded selection sequences (chi)."""

import numpy as np
import pytest

from repro.core.schedule import Schedule, SelectionStep
from repro.exceptions import ScheduleError
from repro.graphs.adjacency import Adjacency


class TestSelectionStep:
    def test_noop_detection(self):
        assert SelectionStep(3, ()).is_noop
        assert not SelectionStep(3, (1,)).is_noop

    def test_frozen(self):
        step = SelectionStep(1, (2,))
        with pytest.raises(AttributeError):
            step.node = 5


class TestScheduleContainer:
    def test_append_and_len(self):
        schedule = Schedule()
        schedule.append(0, [1, 2])
        schedule.append(1, [0])
        assert len(schedule) == 2
        assert schedule[0] == SelectionStep(0, (1, 2))

    def test_iteration_order(self):
        schedule = Schedule.from_pairs([(0, (1,)), (1, (2,)), (2, (0,))])
        nodes = [step.node for step in schedule]
        assert nodes == [0, 1, 2]

    def test_reversed(self):
        schedule = Schedule.from_pairs([(0, (1,)), (1, (2,))])
        reversed_schedule = schedule.reversed()
        assert [s.node for s in reversed_schedule] == [1, 0]
        # Original untouched.
        assert [s.node for s in schedule] == [0, 1]

    def test_double_reverse_identity(self):
        schedule = Schedule.from_pairs([(0, (1,)), (2, (1,)), (1, (0,))])
        assert schedule.reversed().reversed() == schedule

    def test_without_noops(self):
        schedule = Schedule.from_pairs([(0, (1,)), (2, ()), (1, (0,))])
        cleaned = schedule.without_noops()
        assert len(cleaned) == 2
        assert all(not s.is_noop for s in cleaned)

    def test_equality(self):
        a = Schedule.from_pairs([(0, (1,))])
        b = Schedule.from_pairs([(0, (1,))])
        c = Schedule.from_pairs([(1, (0,))])
        assert a == b
        assert a != c


class TestValidation:
    def test_valid_schedule_passes(self, cycle6_adjacency):
        schedule = Schedule.from_pairs([(0, (1,)), (3, (2,)), (5, (0,))])
        schedule.validate(cycle6_adjacency, k=1)

    def test_noop_steps_skip_validation(self, cycle6_adjacency):
        schedule = Schedule.from_pairs([(0, ()), (1, (2,))])
        schedule.validate(cycle6_adjacency, k=1)

    def test_out_of_range_node(self, cycle6_adjacency):
        schedule = Schedule.from_pairs([(9, (1,))])
        with pytest.raises(ScheduleError, match="out of range"):
            schedule.validate(cycle6_adjacency)

    def test_non_neighbour_sample(self, cycle6_adjacency):
        schedule = Schedule.from_pairs([(0, (3,))])
        with pytest.raises(ScheduleError, match="not a neighbour"):
            schedule.validate(cycle6_adjacency)

    def test_duplicate_sample(self, triangle):
        adjacency = Adjacency.from_graph(triangle)
        schedule = Schedule.from_pairs([(0, (1, 1))])
        with pytest.raises(ScheduleError, match="duplicates"):
            schedule.validate(adjacency)

    def test_wrong_k(self, triangle):
        adjacency = Adjacency.from_graph(triangle)
        schedule = Schedule.from_pairs([(0, (1, 2))])
        with pytest.raises(ScheduleError, match="!= k"):
            schedule.validate(adjacency, k=1)


class TestConversion:
    def test_to_arrays_roundtrip(self):
        schedule = Schedule.from_pairs([(0, (1, 2)), (1, ()), (2, (0,))])
        nodes, offsets, samples = schedule.to_arrays()
        assert nodes.tolist() == [0, 1, 2]
        assert offsets.tolist() == [0, 2, 2, 3]
        assert samples.tolist() == [1, 2, 0]

    def test_to_arrays_empty(self):
        nodes, offsets, samples = Schedule().to_arrays()
        assert len(nodes) == 0
        assert offsets.tolist() == [0]
        assert len(samples) == 0
