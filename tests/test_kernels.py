"""Kernel-layer tests: fused/jit block stepping and chunked detection.

Three layers of guarantees, mirroring DESIGN.md section 6:

1. *Replay* — schedule replay is kernel-independent, so every kernel
   reproduces the scalar oracle bit for bit through the coupling path.
2. *Free-running bit-equivalence* — where kernels share an RNG layout
   they must agree exactly: fused == legacy numpy for non-lazy node
   ``k = 1`` free runs (same stream by construction), fused == jit
   always (same pre-drawn variates, same IEEE operations), and fused
   against itself under any chunking of ``run()`` calls.
3. *Chunked detection* — ``run_until_phi`` hitting times are exact and
   invariant to ``block_rounds``: the per-block reconstruction
   backdates each replica to the same crossing round per-round checking
   finds (``block_rounds = 1`` is the per-round reference).
"""

import numpy as np
import pytest

from repro.core.edge_model import EdgeModel
from repro.core.initial import center_simple, rademacher_values
from repro.core.node_model import NodeModel
from repro.engine import (
    BatchEdgeModel,
    BatchNodeModel,
    EngineSpec,
    KERNEL_CHOICES,
    ResultCache,
    numba_available,
    resolve_kernel,
    sample_f_batch,
)
from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.graphs.generators import complete_graph, random_regular_graph
from repro.sim.montecarlo import sample_f_values, sample_t_eps

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed"
)


@pytest.fixture
def regular64():
    return random_regular_graph(64, 4, seed=0)


@pytest.fixture
def values64():
    return center_simple(rademacher_values(64, seed=1))


@pytest.fixture
def irregular30():
    import networkx as nx

    return nx.connected_watts_strogatz_graph(30, 6, 0.3, seed=2)


@pytest.fixture
def values30():
    return center_simple(np.random.default_rng(3).normal(size=30))


class TestKernelResolution:
    def test_choices_and_invalid(self):
        assert set(KERNEL_CHOICES) == {
            "auto", "numpy", "fused", "jit", "jit-par", "cupy"
        }
        with pytest.raises(ParameterError):
            resolve_kernel("warp")

    def test_jit_par_and_cupy_resolution(self):
        assert resolve_kernel("jit-par") == (
            "jit-par" if numba_available() else "fused"
        )
        # cupy always resolves to itself: the NumPy shim backs it when
        # CuPy is absent, so there is no fallback to warn about.
        assert resolve_kernel("cupy") == "cupy"

    def test_available_kernels(self):
        from repro.engine import available_kernels

        names = available_kernels()
        assert "auto" not in names
        assert "numpy" in names and "fused" in names and "cupy" in names
        assert ("jit" in names) == numba_available()
        assert ("jit-par" in names) == numba_available()

    def test_numpy_is_identity(self):
        assert resolve_kernel("numpy") == "numpy"

    def test_auto_and_jit_follow_numba(self):
        expected = "jit" if numba_available() else "fused"
        assert resolve_kernel("auto") == expected
        # Without numba this would fire the one-shot fallback warning,
        # but conftest pre-arms the flag so the suite stays clean under
        # filterwarnings = error::RuntimeWarning.
        assert resolve_kernel("jit") == expected

    def test_jit_fallback_warning_is_captured(self, monkeypatch):
        """Regression: the fallback RuntimeWarning fires exactly where
        expected and is captured by ``pytest.warns`` — never escaping
        into the suite (which runs with RuntimeWarning promoted to an
        error by pytest.ini)."""
        from repro.engine import kernels as kernels_mod

        monkeypatch.setitem(kernels_mod._NUMBA_STATE, "ok", False)
        monkeypatch.setattr(kernels_mod, "_FALLBACK_WARNED", False)
        with pytest.warns(RuntimeWarning, match="numba is not importable"):
            assert resolve_kernel("jit") == "fused"
        assert kernels_mod._FALLBACK_WARNED  # re-armed: once per process

    def test_batch_rejects_unknown_kernel(self, regular64, values64):
        with pytest.raises(ParameterError):
            BatchNodeModel(
                regular64, values64, alpha=0.5, replicas=2, kernel="warp"
            )

    def test_batch_records_requested_and_effective(self, regular64, values64):
        batch = BatchNodeModel(
            regular64, values64, alpha=0.5, replicas=2, kernel="jit"
        )
        assert batch.kernel_requested == "jit"
        assert batch.kernel == ("jit" if numba_available() else "fused")


class TestScheduleReplayAcrossKernels:
    """Replay never draws RNG: every kernel matches the scalar oracle."""

    @pytest.mark.parametrize("kernel", ["numpy", "fused", "jit"])
    def test_node_model(self, regular64, values64, kernel):
        ref = NodeModel(
            regular64, values64, alpha=0.5, k=2, seed=3, record_schedule=True
        )
        ref.run(400)
        batch = BatchNodeModel(
            regular64, values64, alpha=0.5, k=2, replicas=3, seed=99,
            kernel=kernel,
        )
        batch.replay(ref.schedule)
        assert batch.t == ref.t
        np.testing.assert_array_equal(
            batch.values, np.broadcast_to(ref.values, batch.values.shape)
        )
        assert batch.phi[0] == pytest.approx(ref.phi, abs=1e-12)

    @pytest.mark.parametrize("kernel", ["numpy", "fused", "jit"])
    def test_edge_model(self, regular64, values64, kernel):
        ref = EdgeModel(
            regular64, values64, alpha=0.7, seed=4, record_schedule=True
        )
        ref.run(400)
        batch = BatchEdgeModel(
            regular64, values64, alpha=0.7, replicas=2, seed=99, kernel=kernel
        )
        batch.replay(ref.schedule)
        np.testing.assert_array_equal(batch.values[0], ref.values)


class TestFusedMatchesLegacyStream:
    """Non-lazy node k=1 free runs share the numpy kernel's RNG layout."""

    @pytest.mark.parametrize("backend", ["dense", "csr"])
    def test_regular_and_irregular(
        self, regular64, values64, irregular30, values30, backend
    ):
        for graph, values, n_rep in (
            (regular64, values64, 8),
            (irregular30, values30, 5),
        ):
            legacy = BatchNodeModel(
                graph, values, alpha=0.4, k=1, replicas=n_rep, seed=7,
                kernel="numpy", backend=backend,
            )
            fused = BatchNodeModel(
                graph, values, alpha=0.4, k=1, replicas=n_rep, seed=7,
                kernel="fused", backend=backend,
            )
            legacy.run(600)
            fused.run(600)
            assert fused.t == legacy.t == 600
            np.testing.assert_array_equal(fused.values, legacy.values)
            # Deferred moments resync to the same state.
            np.testing.assert_allclose(fused.phi, legacy.phi, atol=1e-13)


class TestChunkInvariance:
    """One realized trajectory no matter how run() calls are chunked."""

    def _variants(self, make):
        one = make()
        one.run(703)
        chunked = make()
        for chunk in (1, 3, 130, 17, 256, 296):
            chunked.run(chunk)
        np.testing.assert_array_equal(one.values, chunked.values)

    def test_node_k1(self, regular64, values64):
        self._variants(lambda: BatchNodeModel(
            regular64, values64, alpha=0.5, k=1, replicas=8, seed=5,
            kernel="fused",
        ))

    def test_node_k2_lazy(self, regular64, values64):
        self._variants(lambda: BatchNodeModel(
            regular64, values64, alpha=0.5, k=2, replicas=8, seed=5,
            kernel="fused", lazy=True,
        ))

    def test_edge_lazy(self, regular64, values64):
        self._variants(lambda: BatchEdgeModel(
            regular64, values64, alpha=0.5, replicas=8, seed=5,
            kernel="fused", lazy=True,
        ))


@needs_numba
class TestJitBitEquivalence:
    """jit consumes the same pre-drawn variates: bit-identical to fused."""

    def _pair(self, cls, *args, **kwargs):
        fused = cls(*args, kernel="fused", **kwargs)
        jit = cls(*args, kernel="jit", **kwargs)
        assert jit.kernel == "jit"
        return fused, jit

    def test_node_k1_run(self, regular64, values64):
        fused, jit = self._pair(
            BatchNodeModel, regular64, values64, 0.5, 1, 8, 11
        )
        fused.run(500)
        jit.run(500)
        np.testing.assert_array_equal(fused.values, jit.values)

    def test_edge_lazy_run(self, regular64, values64):
        fused, jit = self._pair(
            BatchEdgeModel, regular64, values64, 0.5, 8, 11, True
        )
        fused.run(500)
        jit.run(500)
        np.testing.assert_array_equal(fused.values, jit.values)

    def test_hitting_times_match(self, regular64, values64):
        fused, jit = self._pair(
            BatchNodeModel, regular64, values64, 0.5, 1, 16, 13
        )
        np.testing.assert_array_equal(
            fused.run_until_phi(1e-4, 500_000),
            jit.run_until_phi(1e-4, 500_000),
        )


class TestJitParBitEquality:
    """jit-par shards the replica axis only: bit-identical to fused at
    every thread count (each replica's round loop is sequential and
    touches disjoint state)."""

    def _threads_grid(self):
        import os

        return sorted({1, 2, os.cpu_count() or 1})

    @needs_numba
    def test_node_k1_across_thread_counts(self, regular64, values64):
        fused = BatchNodeModel(
            regular64, values64, alpha=0.5, k=1, replicas=8, seed=11,
            kernel="fused",
        )
        fused.run(500)
        for threads in self._threads_grid():
            par = BatchNodeModel(
                regular64, values64, alpha=0.5, k=1, replicas=8, seed=11,
                kernel="jit-par", threads=threads,
            )
            assert par.kernel == "jit-par"
            par.run(500)
            np.testing.assert_array_equal(par.values, fused.values)

    @needs_numba
    def test_edge_lazy_across_thread_counts(self, regular64, values64):
        fused = BatchEdgeModel(
            regular64, values64, alpha=0.5, replicas=8, seed=11,
            kernel="fused", lazy=True,
        )
        fused.run(500)
        for threads in self._threads_grid():
            par = BatchEdgeModel(
                regular64, values64, alpha=0.5, replicas=8, seed=11,
                kernel="jit-par", threads=threads, lazy=True,
            )
            par.run(500)
            np.testing.assert_array_equal(par.values, fused.values)

    @needs_numba
    def test_backdating_invariance(self, regular64, values64):
        """run_until_phi hitting times are exact under jit-par too."""

        def make(kernel, **kw):
            return BatchNodeModel(
                regular64, values64, alpha=0.5, k=1, replicas=16, seed=13,
                kernel=kernel, **kw,
            )

        reference = make("fused")
        reference.block_rounds = 1
        hits = reference.run_until_phi(1e-4, 500_000)
        for threads in self._threads_grid():
            par = make("jit-par", threads=threads)
            np.testing.assert_array_equal(
                par.run_until_phi(1e-4, 500_000), hits
            )
            np.testing.assert_array_equal(par.values, reference.values)

    def test_fallback_without_numba_matches_fused(
        self, regular64, values64, monkeypatch
    ):
        """threads is inert once jit-par degrades to fused (this is the
        path this CPU-only suite actually exercises)."""
        from repro.engine import kernels as kernels_mod

        monkeypatch.setitem(kernels_mod._NUMBA_STATE, "ok", False)
        monkeypatch.setattr(kernels_mod, "_FALLBACK_WARNED", True)
        fused = BatchNodeModel(
            regular64, values64, alpha=0.5, k=1, replicas=6, seed=17,
            kernel="fused",
        )
        par = BatchNodeModel(
            regular64, values64, alpha=0.5, k=1, replicas=6, seed=17,
            kernel="jit-par", threads=4,
        )
        assert par.kernel == "fused" and par.kernel_requested == "jit-par"
        fused.run(400)
        par.run(400)
        np.testing.assert_array_equal(par.values, fused.values)


class TestArrayApiBackend:
    """kernel='cupy': device-resident blocks behind the array namespace.

    Without CuPy the namespace is the NumPy shim, which strengthens the
    statistical-parity contract to bit-equality — the residency logic
    (upload, device blocks, download-on-read) still runs end to end.
    """

    def _pair(self, cls, *args, **kwargs):
        fused = cls(*args, kernel="fused", **kwargs)
        dev = cls(*args, kernel="cupy", **kwargs)
        assert dev.kernel == "cupy"
        return fused, dev

    def test_node_k1_shim_bit_equal(self, regular64, values64):
        from repro.engine import cupy_available

        fused, dev = self._pair(
            BatchNodeModel, regular64, values64, 0.5, 1, 8, 11
        )
        fused.run(500)
        dev.run(500)
        if cupy_available():
            # Real device: statistical parity only — compare moments.
            assert abs(dev.values.mean() - fused.values.mean()) < 0.1
        else:
            np.testing.assert_array_equal(dev.values, fused.values)
            np.testing.assert_allclose(dev.phi, fused.phi, atol=1e-13)

    def test_node_k2_and_edge_shim_bit_equal(
        self, irregular30, values30, regular64, values64
    ):
        from repro.engine import cupy_available

        if cupy_available():
            pytest.skip("bit-equality contract only holds under the shim")
        fused_n, dev_n = self._pair(
            BatchNodeModel, irregular30, values30, 0.4, 2, 5, 7
        )
        fused_n.run(400)
        dev_n.run(400)
        np.testing.assert_array_equal(dev_n.values, fused_n.values)
        fused_e, dev_e = self._pair(
            BatchEdgeModel, regular64, values64, 0.5, 6, 9
        )
        fused_e.run(400)
        dev_e.run(400)
        np.testing.assert_array_equal(dev_e.values, fused_e.values)

    def test_chunk_invariance(self, regular64, values64):
        one = BatchNodeModel(
            regular64, values64, alpha=0.5, k=1, replicas=6, seed=5,
            kernel="cupy",
        )
        one.run(703)
        chunked = BatchNodeModel(
            regular64, values64, alpha=0.5, k=1, replicas=6, seed=5,
            kernel="cupy",
        )
        for chunk in (1, 3, 130, 17, 256, 296):
            chunked.run(chunk)
        np.testing.assert_array_equal(one.values, chunked.values)

    def test_hitting_times_match_fused_under_shim(self, regular64, values64):
        from repro.engine import cupy_available

        if cupy_available():
            pytest.skip("bit-equality contract only holds under the shim")
        fused, dev = self._pair(
            BatchNodeModel, regular64, values64, 0.5, 1, 16, 13
        )
        np.testing.assert_array_equal(
            fused.run_until_phi(1e-4, 500_000),
            dev.run_until_phi(1e-4, 500_000),
        )

    def test_statistical_parity_vs_loop(self):
        """The contract the cupy kernel must satisfy on *any* backend."""
        small = random_regular_graph(36, 4, seed=0)
        initial = center_simple(rademacher_values(36, seed=1))

        def make(rng):
            return NodeModel(small, initial, alpha=0.5, k=1, seed=rng)

        loop = sample_f_values(
            make, 200, seed=5, discrepancy_tol=1e-6, engine="loop"
        )
        dev = sample_f_values(
            make, 200, seed=5, discrepancy_tol=1e-6, engine="batch",
            kernel="cupy",
        )
        stderr = np.hypot(loop.std() / np.sqrt(200), dev.std() / np.sqrt(200))
        assert abs(loop.mean() - dev.mean()) < 5 * stderr
        ratio = dev.var(ddof=1) / loop.var(ddof=1)
        assert 0.5 < ratio < 2.0

    def test_dual_diffusion_device_path(self, regular64, values64):
        """BatchDiffusion(kernel='cupy') keeps loads on-device across a
        selection block and still conserves mass."""
        from repro.engine import BatchDiffusion, cupy_available

        adjacency = Adjacency.from_graph(regular64)
        host = BatchDiffusion(
            adjacency, cost=values64, alpha=0.5, k=1, replicas=4, seed=2,
        )
        dev = BatchDiffusion(
            adjacency, cost=values64, alpha=0.5, k=1, replicas=4, seed=2,
            kernel="cupy",
        )
        host.run(300)
        dev.run(300)
        if not cupy_available():
            np.testing.assert_allclose(dev.loads, host.loads, atol=1e-12)
        np.testing.assert_allclose(
            dev.loads.sum(axis=(1, 2)), host.loads.sum(axis=(1, 2)),
            atol=1e-9,
        )


class TestChunkedDetectionBackdating:
    """Hitting times are exact and invariant to the block size."""

    def _hits(self, make, block_rounds, epsilon, max_steps=500_000):
        batch = make()
        batch.block_rounds = block_rounds
        return batch.run_until_phi(epsilon, max_steps)

    @pytest.mark.parametrize("block_rounds", [3, 17, 64, 256, 1000])
    def test_node_k1_matches_perround_reference(
        self, regular64, values64, block_rounds
    ):
        def make():
            return BatchNodeModel(
                regular64, values64, alpha=0.5, k=1, replicas=16, seed=9,
                kernel="fused",
            )

        ref_batch = make()
        ref_batch.block_rounds = 1
        reference = ref_batch.run_until_phi(1e-4, 500_000)
        assert (reference > 0).all()
        batch = make()
        batch.block_rounds = block_rounds
        np.testing.assert_array_equal(
            batch.run_until_phi(1e-4, 500_000), reference
        )
        # Crossed replicas are rewound to their exact crossing-round
        # state before freezing, so the frozen values (and therefore
        # phi) are also invariant to the block size.
        np.testing.assert_array_equal(batch.values, ref_batch.values)
        np.testing.assert_array_equal(batch.phi, ref_batch.phi)
        # A second call on the fully-frozen batch reports 0 everywhere,
        # exactly as the per-round reference does.
        np.testing.assert_array_equal(
            batch.run_until_phi(1e-4, 100),
            ref_batch.run_until_phi(1e-4, 100),
        )

    @pytest.mark.parametrize("block_rounds", [8, 200])
    def test_edge_and_lazy(self, regular64, values64, block_rounds):
        for lazy in (False, True):
            def make():
                return BatchEdgeModel(
                    regular64, values64, alpha=0.5, replicas=8, seed=11,
                    kernel="fused", lazy=lazy,
                )

            ref = make()
            ref.block_rounds = 1
            reference = ref.run_until_phi(1e-4, 500_000)
            chunked = make()
            chunked.block_rounds = block_rounds
            np.testing.assert_array_equal(
                chunked.run_until_phi(1e-4, 500_000), reference
            )
            # Lazy rewind must skip the coin-tails rounds it never ran.
            np.testing.assert_array_equal(chunked.values, ref.values)

    def test_node_k2_irregular(self, irregular30, values30):
        def make():
            return BatchNodeModel(
                irregular30, values30, alpha=0.4, k=2, replicas=8, seed=13,
                kernel="fused",
            )

        reference = self._hits(make, 1, 1e-5)
        for block_rounds in (13, 256):
            np.testing.assert_array_equal(
                self._hits(make, block_rounds, 1e-5), reference
            )

    def test_node_k3_full_keys(self, regular64, values64):
        """The (R, B, d_max + 1) single-draw contract stays invariant."""

        def make():
            batch = BatchNodeModel(
                regular64, values64, alpha=0.5, k=3, replicas=6, seed=21,
                kernel="fused",
            )
            assert batch._sampler.uses_subset_keys
            return batch

        reference = self._hits(make, 1, 1e-5)
        for block_rounds in (7, 128):
            np.testing.assert_array_equal(
                self._hits(make, block_rounds, 1e-5), reference
            )

    def test_across_resync_boundary(self, regular64, values64):
        """Trajectories longer than _RESYNC_EVERY stay block-invariant."""

        def make():
            return BatchNodeModel(
                regular64, values64, alpha=0.5, k=1, replicas=4, seed=15,
                kernel="fused",
            )

        deep = self._hits(make, 512, 1e-10, max_steps=2_000_000)
        assert deep.max() > 4096
        np.testing.assert_array_equal(
            deep, self._hits(make, 1, 1e-10, max_steps=2_000_000)
        )

    def test_already_converged_and_budget(self, regular64, values64):
        batch = BatchNodeModel(
            regular64, np.zeros(64), alpha=0.5, k=1, replicas=4, seed=9,
            kernel="fused",
        )
        np.testing.assert_array_equal(batch.run_until_phi(1e-6, 100), 0)
        slow = BatchNodeModel(
            regular64, values64, alpha=0.5, k=1, replicas=4, seed=9,
            kernel="fused",
        )
        times = slow.run_until_phi(1e-12, 10)
        np.testing.assert_array_equal(times, -1)
        assert slow.t == 10  # budget respected exactly

    def test_run_after_total_freeze_advances_time(self, regular64, values64):
        batch = BatchNodeModel(
            regular64, values64, alpha=0.5, k=1, replicas=3, seed=9,
            kernel="fused",
        )
        batch.freeze(np.arange(3))
        batch.run(7)
        assert batch.t == 7


class TestStatisticalParity:
    """Fused-kernel distributions match the loop oracle's moments."""

    def test_f_moments(self, regular64, values64):
        small = random_regular_graph(36, 4, seed=0)
        initial = center_simple(rademacher_values(36, seed=1))

        def make(rng):
            return NodeModel(small, initial, alpha=0.5, k=1, seed=rng)

        loop = sample_f_values(
            make, 300, seed=5, discrepancy_tol=1e-6, engine="loop"
        )
        fused = sample_f_values(
            make, 300, seed=5, discrepancy_tol=1e-6, engine="batch",
            kernel="fused",
        )
        stderr = np.hypot(loop.std() / np.sqrt(300), fused.std() / np.sqrt(300))
        assert abs(loop.mean() - fused.mean()) < 5 * stderr
        ratio = fused.var(ddof=1) / loop.var(ddof=1)
        assert 0.6 < ratio < 1.7

    def test_t_eps_distribution(self, regular64, values64):
        small = random_regular_graph(36, 4, seed=0)
        initial = center_simple(rademacher_values(36, seed=1))

        def make(rng):
            return NodeModel(small, initial, alpha=0.5, k=1, seed=rng)

        loop = sample_t_eps(make, 1e-6, 60, seed=6, engine="loop")
        fused = sample_t_eps(
            make, 1e-6, 60, seed=6, engine="batch", kernel="fused"
        )
        assert np.all(fused > 0)
        assert 0.8 < fused.mean() / loop.mean() < 1.25

    def test_invalid_kernel_rejected(self, regular64, values64):
        def make(rng):
            return NodeModel(regular64, values64, alpha=0.5, k=1, seed=rng)

        with pytest.raises(ParameterError):
            sample_f_values(make, 5, seed=1, kernel="warp")


class TestEngineSpecKernel:
    def test_build_threads_kernel(self, regular64, values64):
        spec = EngineSpec(
            "node", Adjacency.from_graph(regular64), values64, 0.5, 1,
            kernel="numpy",
        )
        assert spec.build(4, seed=0).kernel == "numpy"
        assert EngineSpec(
            "node", Adjacency.from_graph(regular64), values64, 0.5, 1
        ).build(4, seed=0).kernel in ("fused", "jit")

    def test_invalid_kernel_rejected(self, regular64, values64):
        with pytest.raises(ParameterError):
            EngineSpec(
                "node", Adjacency.from_graph(regular64), values64, 0.5, 1,
                kernel="warp",
            )

    def test_equality_and_hash_include_kernel(self, regular64, values64):
        adjacency = Adjacency.from_graph(regular64)
        a = EngineSpec("node", adjacency, values64, 0.5, 1, kernel="fused")
        b = EngineSpec("node", adjacency, values64, 0.5, 1, kernel="fused")
        c = EngineSpec("node", adjacency, values64, 0.5, 1, kernel="numpy")
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_cache_token_splits_stream_classes(self, regular64, values64):
        """fused/jit/jit-par/auto share one stream class; numpy and cupy
        are each their own."""
        adjacency = Adjacency.from_graph(regular64)
        tokens = {
            kernel: EngineSpec(
                "node", adjacency, values64, 0.5, 1, kernel=kernel
            ).cache_token()
            for kernel in ("auto", "fused", "jit", "jit-par", "numpy", "cupy")
        }
        assert (
            tokens["auto"] == tokens["fused"] == tokens["jit"]
            == tokens["jit-par"]
        )
        assert tokens["numpy"] != tokens["fused"]
        assert tokens["cupy"] != tokens["fused"]
        assert tokens["cupy"] != tokens["numpy"]
        assert "|stream=cupy" in tokens["cupy"]

    def test_cache_token_threads(self, regular64, values64):
        """threads=None leaves tokens byte-identical to the pre-threads
        era; an explicit thread count splits only block-stream tokens."""
        adjacency = Adjacency.from_graph(regular64)

        def token(**kwargs):
            return EngineSpec(
                "node", adjacency, values64, 0.5, 1, **kwargs
            ).cache_token()

        assert token(kernel="fused") == token(kernel="fused", threads=None)
        assert "|th=" not in token(kernel="fused")
        two = token(kernel="fused", threads=2)
        assert two.endswith("|th=2")
        assert two != token(kernel="fused")
        assert two != token(kernel="fused", threads=4)
        # numpy's legacy stream is per-round and thread-free: threads
        # never fragments its key space.
        assert token(kernel="numpy", threads=2) == token(kernel="numpy")

    def test_cache_token_calibration_independent(self, regular64, values64):
        """Installing a calibration table must not move any cache key:
        auto only ever picks stream-exact kernels, which share the
        block token."""
        from repro.engine.calibration import (
            CalibrationCell,
            CalibrationTable,
            clear_calibration_cache,
            set_calibration,
        )

        adjacency = Adjacency.from_graph(regular64)
        spec = EngineSpec("node", adjacency, values64, 0.5, 1, kernel="auto")
        before = spec.cache_token()
        table = CalibrationTable(cells=[CalibrationCell(
            kind="node", k=1, n=64, replicas=8,
            rates={"numpy": 9e9, "fused": 1.0, "jit": None, "jit-par": None,
                   "cupy": 9e9},
        )])
        set_calibration(table)
        try:
            assert spec.cache_token() == before
            from repro.engine import autopick_kernel

            pick, reason = autopick_kernel("node", 1, 64, 8)
            # numpy/cupy rates dominate the table yet are never eligible.
            assert pick in ("fused", "jit", "jit-par")
            assert reason == "calibrated"
        finally:
            set_calibration(None)
            clear_calibration_cache()

    def test_cache_round_trip_per_kernel(self, tmp_path, regular64, values64):
        spec = EngineSpec(
            "node", Adjacency.from_graph(regular64), values64, 0.5, 1,
            kernel="fused",
        )
        cache = ResultCache(tmp_path)
        first = sample_f_batch(
            spec, 40, seed=3, discrepancy_tol=1e-6, cache=cache
        )
        again = sample_f_batch(
            spec, 40, seed=3, discrepancy_tol=1e-6, cache=cache
        )
        np.testing.assert_array_equal(first, again)

    def test_sharded_runs_identical(self, regular64, values64):
        spec = EngineSpec(
            "node", Adjacency.from_graph(regular64), values64, 0.5, 1,
            kernel="fused",
        )
        serial = sample_f_batch(
            spec, 96, seed=7, discrepancy_tol=1e-6, shard_size=32, processes=1
        )
        parallel = sample_f_batch(
            spec, 96, seed=7, discrepancy_tol=1e-6, shard_size=32, processes=2
        )
        np.testing.assert_array_equal(serial, parallel)


class TestHighDegreeSubsets:
    """Rejection-gated k-subsets: d_max > 64 skips the full-key matrix."""

    def test_gate_engages(self):
        graph = complete_graph(70)
        batch = BatchNodeModel(
            graph, np.zeros(70), alpha=0.5, k=2, replicas=2, seed=0
        )
        assert batch._sampler._rejection_subsets
        assert not batch._sampler.uses_subset_keys

    def test_dense_and_csr_agree(self):
        graph = complete_graph(70)
        values = center_simple(np.random.default_rng(4).normal(size=70))
        dense = BatchNodeModel(
            graph, values, alpha=0.5, k=2, replicas=6, seed=17,
            backend="dense", kernel="fused",
        )
        csr = BatchNodeModel(
            graph, values, alpha=0.5, k=2, replicas=6, seed=17,
            backend="csr", kernel="fused",
        )
        dense.run(300)
        csr.run(300)
        np.testing.assert_array_equal(dense.values, csr.values)

    def test_perround_rejection_dense_csr_agree(self):
        """kernel='numpy' exercises rejection inside neighbour_means."""
        graph = complete_graph(70)
        values = center_simple(np.random.default_rng(5).normal(size=70))
        dense = BatchNodeModel(
            graph, values, alpha=0.5, k=3, replicas=4, seed=19,
            backend="dense", kernel="numpy",
        )
        csr = BatchNodeModel(
            graph, values, alpha=0.5, k=3, replicas=4, seed=19,
            backend="csr", kernel="numpy",
        )
        dense.run(200)
        csr.run(200)
        np.testing.assert_array_equal(dense.values, csr.values)

    def test_statistics_match_loop(self):
        graph = complete_graph(70)
        values = center_simple(rademacher_values(70, seed=2))

        def make(rng):
            return NodeModel(graph, values, alpha=0.5, k=2, seed=rng)

        loop = sample_f_values(
            make, 120, seed=8, discrepancy_tol=1e-6, engine="loop"
        )
        fused = sample_f_values(
            make, 120, seed=8, discrepancy_tol=1e-6, kernel="fused"
        )
        ratio = fused.var(ddof=1) / loop.var(ddof=1)
        assert 0.4 < ratio < 2.5


class TestRunSpecKernel:
    def test_round_trip_and_label(self):
        from repro.api import RunSpec

        spec = RunSpec("EXP-T222", kernel="fused")
        assert RunSpec.from_json(spec.to_json()) == spec
        assert "kernel=fused" in spec.label()

    def test_resolution_folds_kernel(self):
        from repro.api import RunSpec, resolve_spec

        spec = RunSpec("EXP-T222", kernel="numpy")
        assert resolve_spec(spec)["kernel"] == "numpy"
        # Experiments without the parameter ignore the field.
        assert "kernel" not in resolve_spec(RunSpec("EXP-VT", kernel="numpy"))

    def test_noop_kernel_preserves_key(self):
        from repro.api import RunSpec

        assert RunSpec("EXP-T222").key() == RunSpec(
            "EXP-T222", kernel="auto"
        ).key()
        assert RunSpec("EXP-T222").key() != RunSpec(
            "EXP-T222", kernel="numpy"
        ).key()


class TestRunSpecThreads:
    def test_round_trip_label_and_key(self):
        from repro.api import RunSpec

        spec = RunSpec("EXP-T222", kernel="jit-par", threads=2)
        assert RunSpec.from_json(spec.to_json()) == spec
        assert "threads=2" in spec.label()
        assert spec.key() != RunSpec("EXP-T222", kernel="jit-par").key()
        # The default is absent everywhere: old specs keep their keys.
        bare = RunSpec("EXP-T222")
        assert "threads" not in bare.label()
        assert bare.key() == RunSpec("EXP-T222", threads=None).key()

    def test_validation(self):
        from repro.api import RunSpec
        from repro.exceptions import SpecError

        with pytest.raises(SpecError):
            RunSpec("EXP-T222", threads=0)
        with pytest.raises(SpecError):
            RunSpec("EXP-T222", threads=True)

    def test_resolution_folds_threads(self):
        from repro.api import RunSpec, resolve_spec

        spec = RunSpec("EXP-T222", threads=3)
        assert resolve_spec(spec)["threads"] == 3
        # Unset, the declared parameter resolves to its None default —
        # exactly how engine/kernel defaults materialise.
        assert resolve_spec(RunSpec("EXP-T222"))["threads"] is None
        # Experiments without the parameter ignore the field.
        assert "threads" not in resolve_spec(RunSpec("EXP-VT", threads=2))

    def test_threads_param_declaration(self):
        from repro.api import get_experiment, threads_param

        param = threads_param()
        assert param.default is None
        assert param.coerce("threads", "4") == 4
        experiment = get_experiment("EXP-T222")
        assert "threads" in experiment.params
        assert experiment.accepts_threads
