"""Kernel-layer tests: fused/jit block stepping and chunked detection.

Three layers of guarantees, mirroring DESIGN.md section 6:

1. *Replay* — schedule replay is kernel-independent, so every kernel
   reproduces the scalar oracle bit for bit through the coupling path.
2. *Free-running bit-equivalence* — where kernels share an RNG layout
   they must agree exactly: fused == legacy numpy for non-lazy node
   ``k = 1`` free runs (same stream by construction), fused == jit
   always (same pre-drawn variates, same IEEE operations), and fused
   against itself under any chunking of ``run()`` calls.
3. *Chunked detection* — ``run_until_phi`` hitting times are exact and
   invariant to ``block_rounds``: the per-block reconstruction
   backdates each replica to the same crossing round per-round checking
   finds (``block_rounds = 1`` is the per-round reference).
"""

import numpy as np
import pytest

from repro.core.edge_model import EdgeModel
from repro.core.initial import center_simple, rademacher_values
from repro.core.node_model import NodeModel
from repro.engine import (
    BatchEdgeModel,
    BatchNodeModel,
    EngineSpec,
    KERNEL_CHOICES,
    ResultCache,
    numba_available,
    resolve_kernel,
    sample_f_batch,
)
from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.graphs.generators import complete_graph, random_regular_graph
from repro.sim.montecarlo import sample_f_values, sample_t_eps

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed"
)


@pytest.fixture
def regular64():
    return random_regular_graph(64, 4, seed=0)


@pytest.fixture
def values64():
    return center_simple(rademacher_values(64, seed=1))


@pytest.fixture
def irregular30():
    import networkx as nx

    return nx.connected_watts_strogatz_graph(30, 6, 0.3, seed=2)


@pytest.fixture
def values30():
    return center_simple(np.random.default_rng(3).normal(size=30))


class TestKernelResolution:
    def test_choices_and_invalid(self):
        assert set(KERNEL_CHOICES) == {"auto", "numpy", "fused", "jit"}
        with pytest.raises(ParameterError):
            resolve_kernel("warp")

    def test_numpy_is_identity(self):
        assert resolve_kernel("numpy") == "numpy"

    def test_auto_and_jit_follow_numba(self):
        expected = "jit" if numba_available() else "fused"
        assert resolve_kernel("auto") == expected
        # Without numba this would fire the one-shot fallback warning,
        # but conftest pre-arms the flag so the suite stays clean under
        # filterwarnings = error::RuntimeWarning.
        assert resolve_kernel("jit") == expected

    def test_jit_fallback_warning_is_captured(self, monkeypatch):
        """Regression: the fallback RuntimeWarning fires exactly where
        expected and is captured by ``pytest.warns`` — never escaping
        into the suite (which runs with RuntimeWarning promoted to an
        error by pytest.ini)."""
        from repro.engine import kernels as kernels_mod

        monkeypatch.setitem(kernels_mod._NUMBA_STATE, "ok", False)
        monkeypatch.setattr(kernels_mod, "_FALLBACK_WARNED", False)
        with pytest.warns(RuntimeWarning, match="numba is not importable"):
            assert resolve_kernel("jit") == "fused"
        assert kernels_mod._FALLBACK_WARNED  # re-armed: once per process

    def test_batch_rejects_unknown_kernel(self, regular64, values64):
        with pytest.raises(ParameterError):
            BatchNodeModel(
                regular64, values64, alpha=0.5, replicas=2, kernel="warp"
            )

    def test_batch_records_requested_and_effective(self, regular64, values64):
        batch = BatchNodeModel(
            regular64, values64, alpha=0.5, replicas=2, kernel="jit"
        )
        assert batch.kernel_requested == "jit"
        assert batch.kernel == ("jit" if numba_available() else "fused")


class TestScheduleReplayAcrossKernels:
    """Replay never draws RNG: every kernel matches the scalar oracle."""

    @pytest.mark.parametrize("kernel", ["numpy", "fused", "jit"])
    def test_node_model(self, regular64, values64, kernel):
        ref = NodeModel(
            regular64, values64, alpha=0.5, k=2, seed=3, record_schedule=True
        )
        ref.run(400)
        batch = BatchNodeModel(
            regular64, values64, alpha=0.5, k=2, replicas=3, seed=99,
            kernel=kernel,
        )
        batch.replay(ref.schedule)
        assert batch.t == ref.t
        np.testing.assert_array_equal(
            batch.values, np.broadcast_to(ref.values, batch.values.shape)
        )
        assert batch.phi[0] == pytest.approx(ref.phi, abs=1e-12)

    @pytest.mark.parametrize("kernel", ["numpy", "fused", "jit"])
    def test_edge_model(self, regular64, values64, kernel):
        ref = EdgeModel(
            regular64, values64, alpha=0.7, seed=4, record_schedule=True
        )
        ref.run(400)
        batch = BatchEdgeModel(
            regular64, values64, alpha=0.7, replicas=2, seed=99, kernel=kernel
        )
        batch.replay(ref.schedule)
        np.testing.assert_array_equal(batch.values[0], ref.values)


class TestFusedMatchesLegacyStream:
    """Non-lazy node k=1 free runs share the numpy kernel's RNG layout."""

    @pytest.mark.parametrize("backend", ["dense", "csr"])
    def test_regular_and_irregular(
        self, regular64, values64, irregular30, values30, backend
    ):
        for graph, values, n_rep in (
            (regular64, values64, 8),
            (irregular30, values30, 5),
        ):
            legacy = BatchNodeModel(
                graph, values, alpha=0.4, k=1, replicas=n_rep, seed=7,
                kernel="numpy", backend=backend,
            )
            fused = BatchNodeModel(
                graph, values, alpha=0.4, k=1, replicas=n_rep, seed=7,
                kernel="fused", backend=backend,
            )
            legacy.run(600)
            fused.run(600)
            assert fused.t == legacy.t == 600
            np.testing.assert_array_equal(fused.values, legacy.values)
            # Deferred moments resync to the same state.
            np.testing.assert_allclose(fused.phi, legacy.phi, atol=1e-13)


class TestChunkInvariance:
    """One realized trajectory no matter how run() calls are chunked."""

    def _variants(self, make):
        one = make()
        one.run(703)
        chunked = make()
        for chunk in (1, 3, 130, 17, 256, 296):
            chunked.run(chunk)
        np.testing.assert_array_equal(one.values, chunked.values)

    def test_node_k1(self, regular64, values64):
        self._variants(lambda: BatchNodeModel(
            regular64, values64, alpha=0.5, k=1, replicas=8, seed=5,
            kernel="fused",
        ))

    def test_node_k2_lazy(self, regular64, values64):
        self._variants(lambda: BatchNodeModel(
            regular64, values64, alpha=0.5, k=2, replicas=8, seed=5,
            kernel="fused", lazy=True,
        ))

    def test_edge_lazy(self, regular64, values64):
        self._variants(lambda: BatchEdgeModel(
            regular64, values64, alpha=0.5, replicas=8, seed=5,
            kernel="fused", lazy=True,
        ))


@needs_numba
class TestJitBitEquivalence:
    """jit consumes the same pre-drawn variates: bit-identical to fused."""

    def _pair(self, cls, *args, **kwargs):
        fused = cls(*args, kernel="fused", **kwargs)
        jit = cls(*args, kernel="jit", **kwargs)
        assert jit.kernel == "jit"
        return fused, jit

    def test_node_k1_run(self, regular64, values64):
        fused, jit = self._pair(
            BatchNodeModel, regular64, values64, 0.5, 1, 8, 11
        )
        fused.run(500)
        jit.run(500)
        np.testing.assert_array_equal(fused.values, jit.values)

    def test_edge_lazy_run(self, regular64, values64):
        fused, jit = self._pair(
            BatchEdgeModel, regular64, values64, 0.5, 8, 11, True
        )
        fused.run(500)
        jit.run(500)
        np.testing.assert_array_equal(fused.values, jit.values)

    def test_hitting_times_match(self, regular64, values64):
        fused, jit = self._pair(
            BatchNodeModel, regular64, values64, 0.5, 1, 16, 13
        )
        np.testing.assert_array_equal(
            fused.run_until_phi(1e-4, 500_000),
            jit.run_until_phi(1e-4, 500_000),
        )


class TestChunkedDetectionBackdating:
    """Hitting times are exact and invariant to the block size."""

    def _hits(self, make, block_rounds, epsilon, max_steps=500_000):
        batch = make()
        batch.block_rounds = block_rounds
        return batch.run_until_phi(epsilon, max_steps)

    @pytest.mark.parametrize("block_rounds", [3, 17, 64, 256, 1000])
    def test_node_k1_matches_perround_reference(
        self, regular64, values64, block_rounds
    ):
        def make():
            return BatchNodeModel(
                regular64, values64, alpha=0.5, k=1, replicas=16, seed=9,
                kernel="fused",
            )

        ref_batch = make()
        ref_batch.block_rounds = 1
        reference = ref_batch.run_until_phi(1e-4, 500_000)
        assert (reference > 0).all()
        batch = make()
        batch.block_rounds = block_rounds
        np.testing.assert_array_equal(
            batch.run_until_phi(1e-4, 500_000), reference
        )
        # Crossed replicas are rewound to their exact crossing-round
        # state before freezing, so the frozen values (and therefore
        # phi) are also invariant to the block size.
        np.testing.assert_array_equal(batch.values, ref_batch.values)
        np.testing.assert_array_equal(batch.phi, ref_batch.phi)
        # A second call on the fully-frozen batch reports 0 everywhere,
        # exactly as the per-round reference does.
        np.testing.assert_array_equal(
            batch.run_until_phi(1e-4, 100),
            ref_batch.run_until_phi(1e-4, 100),
        )

    @pytest.mark.parametrize("block_rounds", [8, 200])
    def test_edge_and_lazy(self, regular64, values64, block_rounds):
        for lazy in (False, True):
            def make():
                return BatchEdgeModel(
                    regular64, values64, alpha=0.5, replicas=8, seed=11,
                    kernel="fused", lazy=lazy,
                )

            ref = make()
            ref.block_rounds = 1
            reference = ref.run_until_phi(1e-4, 500_000)
            chunked = make()
            chunked.block_rounds = block_rounds
            np.testing.assert_array_equal(
                chunked.run_until_phi(1e-4, 500_000), reference
            )
            # Lazy rewind must skip the coin-tails rounds it never ran.
            np.testing.assert_array_equal(chunked.values, ref.values)

    def test_node_k2_irregular(self, irregular30, values30):
        def make():
            return BatchNodeModel(
                irregular30, values30, alpha=0.4, k=2, replicas=8, seed=13,
                kernel="fused",
            )

        reference = self._hits(make, 1, 1e-5)
        for block_rounds in (13, 256):
            np.testing.assert_array_equal(
                self._hits(make, block_rounds, 1e-5), reference
            )

    def test_node_k3_full_keys(self, regular64, values64):
        """The (R, B, d_max + 1) single-draw contract stays invariant."""

        def make():
            batch = BatchNodeModel(
                regular64, values64, alpha=0.5, k=3, replicas=6, seed=21,
                kernel="fused",
            )
            assert batch._sampler.uses_subset_keys
            return batch

        reference = self._hits(make, 1, 1e-5)
        for block_rounds in (7, 128):
            np.testing.assert_array_equal(
                self._hits(make, block_rounds, 1e-5), reference
            )

    def test_across_resync_boundary(self, regular64, values64):
        """Trajectories longer than _RESYNC_EVERY stay block-invariant."""

        def make():
            return BatchNodeModel(
                regular64, values64, alpha=0.5, k=1, replicas=4, seed=15,
                kernel="fused",
            )

        deep = self._hits(make, 512, 1e-10, max_steps=2_000_000)
        assert deep.max() > 4096
        np.testing.assert_array_equal(
            deep, self._hits(make, 1, 1e-10, max_steps=2_000_000)
        )

    def test_already_converged_and_budget(self, regular64, values64):
        batch = BatchNodeModel(
            regular64, np.zeros(64), alpha=0.5, k=1, replicas=4, seed=9,
            kernel="fused",
        )
        np.testing.assert_array_equal(batch.run_until_phi(1e-6, 100), 0)
        slow = BatchNodeModel(
            regular64, values64, alpha=0.5, k=1, replicas=4, seed=9,
            kernel="fused",
        )
        times = slow.run_until_phi(1e-12, 10)
        np.testing.assert_array_equal(times, -1)
        assert slow.t == 10  # budget respected exactly

    def test_run_after_total_freeze_advances_time(self, regular64, values64):
        batch = BatchNodeModel(
            regular64, values64, alpha=0.5, k=1, replicas=3, seed=9,
            kernel="fused",
        )
        batch.freeze(np.arange(3))
        batch.run(7)
        assert batch.t == 7


class TestStatisticalParity:
    """Fused-kernel distributions match the loop oracle's moments."""

    def test_f_moments(self, regular64, values64):
        small = random_regular_graph(36, 4, seed=0)
        initial = center_simple(rademacher_values(36, seed=1))

        def make(rng):
            return NodeModel(small, initial, alpha=0.5, k=1, seed=rng)

        loop = sample_f_values(
            make, 300, seed=5, discrepancy_tol=1e-6, engine="loop"
        )
        fused = sample_f_values(
            make, 300, seed=5, discrepancy_tol=1e-6, engine="batch",
            kernel="fused",
        )
        stderr = np.hypot(loop.std() / np.sqrt(300), fused.std() / np.sqrt(300))
        assert abs(loop.mean() - fused.mean()) < 5 * stderr
        ratio = fused.var(ddof=1) / loop.var(ddof=1)
        assert 0.6 < ratio < 1.7

    def test_t_eps_distribution(self, regular64, values64):
        small = random_regular_graph(36, 4, seed=0)
        initial = center_simple(rademacher_values(36, seed=1))

        def make(rng):
            return NodeModel(small, initial, alpha=0.5, k=1, seed=rng)

        loop = sample_t_eps(make, 1e-6, 60, seed=6, engine="loop")
        fused = sample_t_eps(
            make, 1e-6, 60, seed=6, engine="batch", kernel="fused"
        )
        assert np.all(fused > 0)
        assert 0.8 < fused.mean() / loop.mean() < 1.25

    def test_invalid_kernel_rejected(self, regular64, values64):
        def make(rng):
            return NodeModel(regular64, values64, alpha=0.5, k=1, seed=rng)

        with pytest.raises(ParameterError):
            sample_f_values(make, 5, seed=1, kernel="warp")


class TestEngineSpecKernel:
    def test_build_threads_kernel(self, regular64, values64):
        spec = EngineSpec(
            "node", Adjacency.from_graph(regular64), values64, 0.5, 1,
            kernel="numpy",
        )
        assert spec.build(4, seed=0).kernel == "numpy"
        assert EngineSpec(
            "node", Adjacency.from_graph(regular64), values64, 0.5, 1
        ).build(4, seed=0).kernel in ("fused", "jit")

    def test_invalid_kernel_rejected(self, regular64, values64):
        with pytest.raises(ParameterError):
            EngineSpec(
                "node", Adjacency.from_graph(regular64), values64, 0.5, 1,
                kernel="warp",
            )

    def test_equality_and_hash_include_kernel(self, regular64, values64):
        adjacency = Adjacency.from_graph(regular64)
        a = EngineSpec("node", adjacency, values64, 0.5, 1, kernel="fused")
        b = EngineSpec("node", adjacency, values64, 0.5, 1, kernel="fused")
        c = EngineSpec("node", adjacency, values64, 0.5, 1, kernel="numpy")
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_cache_token_splits_stream_classes(self, regular64, values64):
        """fused/jit/auto share one stream class; numpy is its own."""
        adjacency = Adjacency.from_graph(regular64)
        tokens = {
            kernel: EngineSpec(
                "node", adjacency, values64, 0.5, 1, kernel=kernel
            ).cache_token()
            for kernel in ("auto", "fused", "jit", "numpy")
        }
        assert tokens["auto"] == tokens["fused"] == tokens["jit"]
        assert tokens["numpy"] != tokens["fused"]

    def test_cache_round_trip_per_kernel(self, tmp_path, regular64, values64):
        spec = EngineSpec(
            "node", Adjacency.from_graph(regular64), values64, 0.5, 1,
            kernel="fused",
        )
        cache = ResultCache(tmp_path)
        first = sample_f_batch(
            spec, 40, seed=3, discrepancy_tol=1e-6, cache=cache
        )
        again = sample_f_batch(
            spec, 40, seed=3, discrepancy_tol=1e-6, cache=cache
        )
        np.testing.assert_array_equal(first, again)

    def test_sharded_runs_identical(self, regular64, values64):
        spec = EngineSpec(
            "node", Adjacency.from_graph(regular64), values64, 0.5, 1,
            kernel="fused",
        )
        serial = sample_f_batch(
            spec, 96, seed=7, discrepancy_tol=1e-6, shard_size=32, processes=1
        )
        parallel = sample_f_batch(
            spec, 96, seed=7, discrepancy_tol=1e-6, shard_size=32, processes=2
        )
        np.testing.assert_array_equal(serial, parallel)


class TestHighDegreeSubsets:
    """Rejection-gated k-subsets: d_max > 64 skips the full-key matrix."""

    def test_gate_engages(self):
        graph = complete_graph(70)
        batch = BatchNodeModel(
            graph, np.zeros(70), alpha=0.5, k=2, replicas=2, seed=0
        )
        assert batch._sampler._rejection_subsets
        assert not batch._sampler.uses_subset_keys

    def test_dense_and_csr_agree(self):
        graph = complete_graph(70)
        values = center_simple(np.random.default_rng(4).normal(size=70))
        dense = BatchNodeModel(
            graph, values, alpha=0.5, k=2, replicas=6, seed=17,
            backend="dense", kernel="fused",
        )
        csr = BatchNodeModel(
            graph, values, alpha=0.5, k=2, replicas=6, seed=17,
            backend="csr", kernel="fused",
        )
        dense.run(300)
        csr.run(300)
        np.testing.assert_array_equal(dense.values, csr.values)

    def test_perround_rejection_dense_csr_agree(self):
        """kernel='numpy' exercises rejection inside neighbour_means."""
        graph = complete_graph(70)
        values = center_simple(np.random.default_rng(5).normal(size=70))
        dense = BatchNodeModel(
            graph, values, alpha=0.5, k=3, replicas=4, seed=19,
            backend="dense", kernel="numpy",
        )
        csr = BatchNodeModel(
            graph, values, alpha=0.5, k=3, replicas=4, seed=19,
            backend="csr", kernel="numpy",
        )
        dense.run(200)
        csr.run(200)
        np.testing.assert_array_equal(dense.values, csr.values)

    def test_statistics_match_loop(self):
        graph = complete_graph(70)
        values = center_simple(rademacher_values(70, seed=2))

        def make(rng):
            return NodeModel(graph, values, alpha=0.5, k=2, seed=rng)

        loop = sample_f_values(
            make, 120, seed=8, discrepancy_tol=1e-6, engine="loop"
        )
        fused = sample_f_values(
            make, 120, seed=8, discrepancy_tol=1e-6, kernel="fused"
        )
        ratio = fused.var(ddof=1) / loop.var(ddof=1)
        assert 0.4 < ratio < 2.5


class TestRunSpecKernel:
    def test_round_trip_and_label(self):
        from repro.api import RunSpec

        spec = RunSpec("EXP-T222", kernel="fused")
        assert RunSpec.from_json(spec.to_json()) == spec
        assert "kernel=fused" in spec.label()

    def test_resolution_folds_kernel(self):
        from repro.api import RunSpec, resolve_spec

        spec = RunSpec("EXP-T222", kernel="numpy")
        assert resolve_spec(spec)["kernel"] == "numpy"
        # Experiments without the parameter ignore the field.
        assert "kernel" not in resolve_spec(RunSpec("EXP-VT", kernel="numpy"))

    def test_noop_kernel_preserves_key(self):
        from repro.api import RunSpec

        assert RunSpec("EXP-T222").key() == RunSpec(
            "EXP-T222", kernel="auto"
        ).key()
        assert RunSpec("EXP-T222").key() != RunSpec(
            "EXP-T222", kernel="numpy"
        ).key()
