"""Tests for the expected-update matrices and martingale structure."""

import networkx as nx
import numpy as np
import pytest

from repro.core.edge_model import EdgeModel
from repro.core.node_model import NodeModel
from repro.exceptions import ParameterError
from repro.graphs.spectral import simple_walk_matrix, stationary_distribution
from repro.theory import martingale as mart


class TestNodeExpectedUpdate:
    def test_formula(self, star5):
        alpha = 0.3
        p = simple_walk_matrix(star5)
        expected = np.eye(6) - (1 - alpha) / 6 * (np.eye(6) - p)
        assert np.allclose(mart.node_model_expected_update(star5, alpha), expected)

    def test_row_stochastic(self, star5):
        update = mart.node_model_expected_update(star5, 0.5)
        assert np.allclose(update.sum(axis=1), 1.0)
        assert np.all(update >= 0)

    def test_pi_is_left_fixed_vector(self, star5):
        """The Lemma 4.1 martingale: pi^T E[L] = pi^T on irregular graphs."""
        update = mart.node_model_expected_update(star5, 0.5)
        pi = stationary_distribution(star5)
        assert np.allclose(pi @ update, pi, atol=1e-12)

    def test_uniform_not_fixed_on_irregular(self, star5):
        """The simple average is NOT a NodeModel martingale on irregular
        graphs — the paper's reason for the degree-weighted M(t)."""
        update = mart.node_model_expected_update(star5, 0.5)
        uniform = np.full(6, 1 / 6)
        assert not np.allclose(uniform @ update, uniform, atol=1e-6)

    def test_matches_one_step_empirical_mean(self, petersen, rng):
        initial = rng.normal(size=10)
        alpha = 0.5
        update = mart.node_model_expected_update(petersen, alpha)
        process = NodeModel(petersen, initial, alpha=alpha, k=3, seed=1)
        total = np.zeros(10)
        replicas = 30_000
        for _ in range(replicas):
            process.reset()
            process.step()
            total += process.values
        # Independent of k (Lemma E.1(2) argument).
        assert np.allclose(total / replicas, update @ initial, atol=0.02)


class TestEdgeExpectedUpdate:
    def test_formula(self, star5):
        alpha = 0.3
        from repro.graphs.spectral import laplacian_matrix

        laplacian = laplacian_matrix(star5)
        expected = np.eye(6) - (1 - alpha) / (2 * 5) * laplacian
        assert np.allclose(mart.edge_model_expected_update(star5, alpha), expected)

    def test_uniform_is_left_fixed_vector(self, star5):
        """Prop D.1(i): the simple average is the EdgeModel martingale."""
        update = mart.edge_model_expected_update(star5, 0.5)
        uniform = np.full(6, 1 / 6)
        assert np.allclose(uniform @ update, uniform, atol=1e-12)

    def test_pi_not_fixed_on_irregular(self, star5):
        update = mart.edge_model_expected_update(star5, 0.5)
        pi = stationary_distribution(star5)
        assert not np.allclose(pi @ update, pi, atol=1e-6)

    def test_matches_one_step_empirical_mean(self, star5, rng):
        initial = rng.normal(size=6)
        update = mart.edge_model_expected_update(star5, 0.5)
        process = EdgeModel(star5, initial, alpha=0.5, seed=2)
        total = np.zeros(6)
        replicas = 40_000
        for _ in range(replicas):
            process.reset()
            process.step()
            total += process.values
        assert np.allclose(total / replicas, update @ initial, atol=0.02)


class TestExpectedState:
    def test_power_iteration(self, petersen, rng):
        initial = rng.normal(size=10)
        update = mart.node_model_expected_update(petersen, 0.5)
        direct = update @ (update @ (update @ initial))
        assert np.allclose(mart.expected_state(update, initial, 3), direct)

    def test_t_zero_identity(self, petersen, rng):
        initial = rng.normal(size=10)
        update = mart.node_model_expected_update(petersen, 0.5)
        assert np.allclose(mart.expected_state(update, initial, 0), initial)

    def test_validation(self, petersen):
        update = mart.node_model_expected_update(petersen, 0.5)
        with pytest.raises(ParameterError):
            mart.expected_state(update, np.zeros(10), -1)

    def test_long_horizon_converges_to_martingale_value(self, star5, rng):
        """(E[L])^t xi(0) -> M(0) 1 as t -> infinity (NodeModel)."""
        initial = rng.normal(size=6)
        pi = stationary_distribution(star5)
        m0 = float(np.sum(pi * initial))
        update = mart.node_model_expected_update(star5, 0.5)
        far = mart.expected_state(update, initial, 20_000)
        assert np.allclose(far, m0, atol=1e-8)


class TestWeights:
    def test_node_weights(self, star5):
        weights = mart.martingale_weights(star5, "node")
        assert weights[0] == pytest.approx(0.5)
        assert weights.sum() == pytest.approx(1.0)

    def test_edge_weights(self, star5):
        weights = mart.martingale_weights(star5, "edge")
        assert np.allclose(weights, 1 / 6)

    def test_unknown_model(self, star5):
        with pytest.raises(ParameterError):
            mart.martingale_weights(star5, "gossip")
