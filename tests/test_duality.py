"""Tests for the executable duality (Prop 5.1 / Lemma 5.2) and figures."""

import numpy as np
import pytest

from repro.core.schedule import Schedule
from repro.dual.duality import (
    figure1_trace,
    figure4_trace,
    run_coupled,
    verify_duality,
)
from repro.graphs.generators import (
    erdos_renyi_graph,
    random_regular_graph,
    star_graph,
)


class TestFigure1:
    def test_states_match_paper(self):
        figure = figure1_trace()
        assert np.allclose(figure.trace.xi, figure.expected_xi)

    def test_xi2_values_exact(self):
        figure = figure1_trace()
        assert figure.trace.xi[2].tolist() == [7.0, 7.5, 9.0]

    def test_duality_exact(self):
        figure = figure1_trace()
        assert figure.trace.max_error == 0.0

    def test_w_final_equals_xi_final(self):
        figure = figure1_trace()
        assert np.allclose(figure.trace.w_final, figure.trace.xi[-1])

    def test_f_matrices_shape(self):
        figure = figure1_trace()
        assert len(figure.f_matrices) == 2
        # F(1) averages u1 with u2 (paper's matrix).
        assert np.allclose(
            figure.f_matrices[0],
            [[0.5, 0.5, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
        )

    def test_r_final_columns_match_figure(self):
        # Figure 1(b): R(2) column for u2 is [1/4, 3/4, 0].
        figure = figure1_trace()
        assert np.allclose(figure.trace.r_final[:, 1], [0.25, 0.75, 0.0])


class TestFigure4:
    def test_states_match_paper(self):
        figure = figure4_trace()
        assert np.allclose(figure.trace.xi, figure.expected_xi)

    def test_xi2_exact_rationals(self):
        figure = figure4_trace()
        assert figure.trace.xi[2].tolist() == [29 / 4, 129 / 16, 9.0]

    def test_duality_exact(self):
        figure = figure4_trace()
        assert figure.trace.max_error == 0.0

    def test_r_final_column_for_u2(self):
        # Figure 4(b): R(2) column for u2 is [1/8, 9/16, 5/16].
        figure = figure4_trace()
        assert np.allclose(figure.trace.r_final[:, 1], [1 / 8, 9 / 16, 5 / 16])


class TestRandomDuality:
    @pytest.mark.parametrize("k,alpha", [(1, 0.5), (2, 0.3), (3, 0.8)])
    def test_exact_on_random_regular(self, k, alpha):
        graph = random_regular_graph(14, 4, seed=k)
        rng = np.random.default_rng(k)
        initial = rng.normal(size=14)
        trace = run_coupled(graph, initial, alpha=alpha, k=k, steps=120, seed=k)
        assert verify_duality(trace)
        assert trace.max_error < 1e-10

    def test_exact_on_irregular_graph(self):
        graph = star_graph(8)
        rng = np.random.default_rng(5)
        initial = rng.normal(size=8)
        trace = run_coupled(graph, initial, alpha=0.6, k=1, steps=100, seed=5)
        assert verify_duality(trace)

    def test_exact_on_erdos_renyi(self):
        graph = erdos_renyi_graph(20, 0.3, seed=6)
        rng = np.random.default_rng(6)
        initial = rng.normal(size=20)
        trace = run_coupled(graph, initial, alpha=0.5, k=1, steps=200, seed=7)
        assert verify_duality(trace)

    def test_forward_forward_breaks_duality(self):
        """Running both processes FORWARD on the same schedule must not
        reproduce xi(T) in general — the reversal is essential (the paper
        remarks on this in Proposition 5.1's proof)."""
        from repro.core.node_model import NodeModel
        from repro.dual.diffusion import DiffusionProcess

        graph = random_regular_graph(10, 3, seed=9)
        rng = np.random.default_rng(9)
        initial = rng.normal(size=10)
        process = NodeModel(
            graph, initial, alpha=0.5, k=1, seed=10, record_schedule=True
        )
        process.run(60)
        diffusion = DiffusionProcess(graph, cost=initial, alpha=0.5, k=1)
        diffusion.replay(process.schedule)  # NOT reversed
        assert not np.allclose(diffusion.costs, process.values, atol=1e-6)

    def test_given_schedule_is_deterministic(self, triangle):
        schedule = Schedule.from_pairs([(0, (1,)), (2, (0,)), (1, (2,))])
        a = run_coupled(triangle, [1.0, 2.0, 3.0], alpha=0.5, schedule=schedule)
        b = run_coupled(triangle, [1.0, 2.0, 3.0], alpha=0.5, schedule=schedule)
        assert np.allclose(a.xi, b.xi)
        assert a.max_error == b.max_error == 0.0

    def test_r_final_consistency(self):
        """W(T) computed via the explicit product matrix equals the
        incremental diffusion costs."""
        graph = random_regular_graph(8, 3, seed=12)
        rng = np.random.default_rng(12)
        initial = rng.normal(size=8)
        trace = run_coupled(graph, initial, alpha=0.4, k=1, steps=50, seed=13)
        w_from_r = initial @ trace.r_final
        assert np.allclose(w_from_r, trace.w_final, atol=1e-12)
