"""Tests for initial-value workloads."""

import numpy as np
import pytest

from repro.core import initial
from repro.exceptions import ParameterError
from repro.graphs.spectral import (
    lazy_walk_matrix,
    laplacian_matrix,
    second_laplacian_eigenpair,
    second_walk_eigenpair,
    stationary_distribution,
)


class TestPlainFamilies:
    def test_constant(self):
        values = initial.constant_values(5, 2.0)
        assert np.allclose(values, 2.0)

    def test_indicator(self):
        values = initial.indicator_values(5, node=2, scale=3.0)
        assert values[2] == 3.0
        assert values.sum() == pytest.approx(3.0)

    def test_indicator_bounds(self):
        with pytest.raises(ParameterError):
            initial.indicator_values(5, node=5)

    def test_linear_ramp_endpoints(self):
        values = initial.linear_ramp(11, -1.0, 1.0)
        assert values[0] == -1.0 and values[-1] == 1.0
        assert np.all(np.diff(values) > 0)

    def test_uniform_range(self):
        values = initial.uniform_values(500, -2.0, 3.0, seed=1)
        assert values.min() >= -2.0 and values.max() <= 3.0

    def test_uniform_invalid_range(self):
        with pytest.raises(ParameterError):
            initial.uniform_values(5, 1.0, 1.0)

    def test_gaussian_moments(self):
        values = initial.gaussian_values(20_000, mean=1.0, std=2.0, seed=2)
        assert values.mean() == pytest.approx(1.0, abs=0.1)
        assert values.std() == pytest.approx(2.0, abs=0.1)

    def test_gaussian_negative_std(self):
        with pytest.raises(ParameterError):
            initial.gaussian_values(5, std=-1.0)

    def test_rademacher_values_pm_one(self):
        values = initial.rademacher_values(100, seed=3)
        assert set(np.unique(values)) <= {-1.0, 1.0}

    def test_rademacher_norm(self):
        values = initial.rademacher_values(64, seed=3)
        assert np.sum(values**2) == pytest.approx(64.0)

    def test_bipartition_default_split(self):
        values = initial.bipartition_values(6)
        assert values.tolist() == [1.0, 1.0, 1.0, -1.0, -1.0, -1.0]

    def test_bipartition_bounds(self):
        with pytest.raises(ParameterError):
            initial.bipartition_values(5, split=6)

    def test_registry_dispatch(self):
        values = initial.make_initial("linear_ramp", 4, low=0.0, high=3.0)
        assert values.tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_registry_unknown(self):
        with pytest.raises(ParameterError, match="unknown initial family"):
            initial.make_initial("zipf", 4)


class TestCentering:
    def test_center_simple(self, rng):
        values = initial.center_simple(rng.normal(2.0, 1.0, size=50))
        assert values.mean() == pytest.approx(0.0, abs=1e-12)

    def test_center_degree_weighted(self, star5, rng):
        values = initial.center_degree_weighted(star5, rng.normal(size=6))
        pi = stationary_distribution(star5)
        assert float(np.sum(pi * values)) == pytest.approx(0.0, abs=1e-12)

    def test_centering_coincides_on_regular(self, petersen, rng):
        values = rng.normal(size=10)
        simple = initial.center_simple(values)
        weighted = initial.center_degree_weighted(petersen, values)
        assert np.allclose(simple, weighted)


class TestWorstCases:
    def test_second_eigenvector_aligned_is_eigenvector(self, petersen):
        values = initial.second_eigenvector_aligned(petersen)
        lambda2, _ = second_walk_eigenpair(petersen)
        p = lazy_walk_matrix(petersen)
        assert np.allclose(p @ values, lambda2 * values, atol=1e-8)

    def test_second_eigenvector_default_scale_n(self, petersen):
        values = initial.second_eigenvector_aligned(petersen)
        pi = stationary_distribution(petersen)
        # f_2 has <f,f>_pi = 1, scaled by n -> <v,v>_pi = n^2.
        assert float(np.sum(pi * values * values)) == pytest.approx(100.0)

    def test_fiedler_aligned_is_eigenvector(self, petersen):
        values = initial.fiedler_aligned(petersen, scale=2.0)
        lambda2, _ = second_laplacian_eigenpair(petersen)
        laplacian = laplacian_matrix(petersen)
        assert np.allclose(laplacian @ values, lambda2 * values, atol=1e-8)

    def test_worst_cases_are_centered(self, petersen):
        node_state = initial.second_eigenvector_aligned(petersen)
        edge_state = initial.fiedler_aligned(petersen)
        pi = stationary_distribution(petersen)
        assert float(np.sum(pi * node_state)) == pytest.approx(0.0, abs=1e-9)
        assert edge_state.mean() == pytest.approx(0.0, abs=1e-9)
