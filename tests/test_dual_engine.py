"""Conformance tests for the vectorized dual engine (repro.engine.dual).

The scalar ``repro.dual`` facades and hand-loop reimplementations in
this module are the oracles: batch replays must be *bit-identical* to
them, selection streams must match the primal engine's, and the
Lemma 5.2 shared-schedule identity must hold to machine precision for
every replica at engine scale, under every kernel.
"""

import numpy as np
import pytest

from repro.core.node_model import NodeModel
from repro.core.schedule import Schedule, draw_node_selection
from repro.dual.coalescing import CoalescingWalks, meeting_time_estimate
from repro.dual.diffusion import DiffusionProcess
from repro.dual.walks import RandomWalkProcess
from repro.engine import (
    BatchCoalescing,
    BatchDiffusion,
    BatchNodeModel,
    BatchWalks,
    DualSpec,
    RecordedSelections,
    ResultCache,
    numba_available,
    run_duality_batch,
    sample_coalescence_times,
)
from repro.exceptions import ConvergenceError, ParameterError
from repro.graphs.adjacency import Adjacency
from repro.graphs.generators import (
    erdos_renyi_graph,
    random_regular_graph,
    star_graph,
)
from repro.rng import as_generator, spawn

KERNELS = ["numpy", "fused"] + (["jit"] if numba_available() else [])


@pytest.fixture(scope="module")
def regular16():
    return Adjacency.from_graph(random_regular_graph(16, 4, seed=1))


@pytest.fixture(scope="module")
def irregular12():
    return Adjacency.from_graph(erdos_renyi_graph(12, 0.5, seed=2))


def _random_schedule(adjacency, k, steps, seed, noop_every=0):
    rng = as_generator(seed)
    schedule = Schedule()
    for t in range(steps):
        if noop_every and t % noop_every == 0:
            schedule.append(int(rng.integers(adjacency.n)), ())
            continue
        step = draw_node_selection(adjacency, k, rng)
        schedule.append(step.node, step.sample)
    return schedule


# ----------------------------------------------------------------------
# RecordedSelections
# ----------------------------------------------------------------------
class TestRecordedSelections:
    def test_shapes_validated(self):
        with pytest.raises(ParameterError):
            RecordedSelections(np.zeros(3, dtype=np.int64), np.zeros((3, 2, 1)))
        with pytest.raises(ParameterError):
            RecordedSelections(
                np.zeros((3, 2), dtype=np.int64), np.zeros((3, 3, 1), dtype=np.int64)
            )
        with pytest.raises(ParameterError):
            RecordedSelections(
                np.zeros((3, 2), dtype=np.int64),
                np.zeros((3, 2, 1), dtype=np.int64),
                keep=np.ones((2, 2), dtype=bool),
            )

    def test_reversed_round_trip(self):
        nodes = np.arange(6, dtype=np.int64).reshape(3, 2)
        picked = np.arange(12, dtype=np.int64).reshape(3, 2, 2)
        sel = RecordedSelections(nodes, picked)
        rev = sel.reversed()
        assert np.array_equal(rev.nodes, nodes[::-1])
        assert np.array_equal(rev.reversed().nodes, nodes)
        assert len(sel) == 3 and sel.replicas == 2 and sel.k == 2

    def test_schedule_for_with_noops(self):
        nodes = np.array([[1, 2], [3, 4]], dtype=np.int64)
        picked = np.array([[[5], [6]], [[7], [8]]], dtype=np.int64)
        keep = np.array([[True, False], [False, True]])
        sel = RecordedSelections(nodes, picked, keep)
        s0 = sel.schedule_for(0)
        s1 = sel.schedule_for(1)
        assert [(s.node, s.sample) for s in s0] == [(1, (5,)), (3, ())]
        assert [(s.node, s.sample) for s in s1] == [(2, ()), (4, (8,))]

    def test_concatenate_mixed_keep(self):
        a = RecordedSelections(
            np.zeros((2, 2), dtype=np.int64), np.zeros((2, 2, 1), dtype=np.int64)
        )
        b = RecordedSelections(
            np.ones((1, 2), dtype=np.int64),
            np.ones((1, 2, 1), dtype=np.int64),
            keep=np.array([[True, False]]),
        )
        joined = RecordedSelections.concatenate([a, b])
        assert len(joined) == 3
        assert joined.keep is not None
        assert joined.keep[:2].all()
        assert joined.keep[2].tolist() == [True, False]


# ----------------------------------------------------------------------
# Primal selection recording (all kernels)
# ----------------------------------------------------------------------
class TestPrimalSelectionRecording:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_recorded_stream_replays_to_primal_state(self, regular16, kernel, k):
        """Replaying replica b's recorded schedule through the scalar
        NodeModel reproduces the batch trajectory (the recording is the
        trajectory, under every kernel)."""
        x0 = np.linspace(-1.0, 1.0, 16)
        batch = BatchNodeModel(
            regular16, x0, 0.4, k=k, replicas=3, seed=11, kernel=kernel
        )
        batch.record_selections()
        batch.run(130)
        selections = batch.recorded_selections()
        assert len(selections) == 130
        for b in range(3):
            schedule = selections.schedule_for(b)
            schedule.validate(regular16, k=k)
            scalar = NodeModel(regular16, x0, alpha=0.4, k=k)
            scalar.replay(schedule)
            np.testing.assert_allclose(
                scalar.values, batch.values[b], atol=1e-12
            )

    @pytest.mark.parametrize("kernel", ["numpy", "fused"])
    def test_lazy_recording_marks_noops(self, regular16, kernel):
        x0 = np.linspace(0.0, 1.0, 16)
        batch = BatchNodeModel(
            regular16, x0, 0.5, k=1, replicas=4, seed=3, lazy=True,
            kernel=kernel,
        )
        batch.record_selections()
        batch.run(200)
        selections = batch.recorded_selections()
        assert selections.keep is not None
        frac = selections.keep.mean()
        assert 0.35 < frac < 0.65  # the fair lazy coin
        scalar = NodeModel(regular16, x0, alpha=0.5, k=1)
        scalar.replay(selections.schedule_for(2))
        np.testing.assert_allclose(scalar.values, batch.values[2], atol=1e-12)

    def test_recording_requires_enable(self, regular16):
        batch = BatchNodeModel(
            regular16, np.zeros(16), 0.5, replicas=2, seed=0
        )
        with pytest.raises(ParameterError):
            batch.recorded_selections()
        batch.record_selections()
        with pytest.raises(ParameterError):
            batch.recorded_selections()


# ----------------------------------------------------------------------
# BatchDiffusion
# ----------------------------------------------------------------------
class TestBatchDiffusion:
    @pytest.mark.parametrize("backend", ["dense", "csr"])
    @pytest.mark.parametrize("k", [1, 2])
    def test_shared_replay_bit_identical_to_scalar(self, regular16, backend, k):
        """Every replica replaying a shared schedule equals the scalar
        facade bit for bit (the diffusion replay is deterministic)."""
        cost = np.linspace(-2.0, 3.0, 16)
        schedule = _random_schedule(regular16, k, 80, seed=5, noop_every=11)
        scalar = DiffusionProcess(regular16, cost=cost, alpha=0.3, k=k)
        scalar.replay(schedule)
        batch = BatchDiffusion(
            regular16, cost=cost, alpha=0.3, k=k, replicas=4, backend=backend
        )
        batch.replay(schedule)
        for b in range(4):
            np.testing.assert_array_equal(batch.loads[b], scalar.loads)
        np.testing.assert_array_equal(batch.costs[0], scalar.costs)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_per_replica_streams_match_scalar_replay(self, regular16, kernel):
        """apply_selections on a recorded primal stream is bit-identical
        to replaying each replica's schedule through the scalar facade."""
        cost = np.linspace(0.0, 1.0, 16)
        x0 = np.linspace(-1.0, 1.0, 16)
        primal = BatchNodeModel(
            regular16, x0, 0.5, k=2, replicas=3, seed=7, kernel=kernel
        )
        primal.record_selections()
        primal.run(90)
        selections = primal.recorded_selections()
        batch = BatchDiffusion(
            regular16, cost=cost, alpha=0.5, k=2, replicas=3
        )
        batch.apply_selections(selections)
        for b in range(3):
            scalar = DiffusionProcess(regular16, cost=cost, alpha=0.5, k=2)
            scalar.replay(selections.schedule_for(b))
            np.testing.assert_array_equal(batch.loads[b], scalar.loads)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_free_run_selection_stream_matches_primal(self, regular16, k):
        """Tentpole contract: a free-running batch diffusion consumes
        bit-identical selection streams to the primal block kernels at a
        fixed seed."""
        x0 = np.zeros(16)
        primal = BatchNodeModel(
            regular16, x0, 0.5, k=k, replicas=5, seed=99, kernel="fused"
        )
        primal.record_selections()
        primal.run(300)
        ps = primal.recorded_selections()
        diffusion = BatchDiffusion(
            regular16, cost=x0, alpha=0.5, k=k, replicas=5, seed=99
        )
        diffusion.record_selections()
        diffusion.run(300)
        ds = diffusion.recorded_selections()
        np.testing.assert_array_equal(ps.nodes, ds.nodes)
        np.testing.assert_array_equal(ps.picked, ds.picked)

    def test_dense_csr_bit_identical_free_run(self, irregular12):
        cost = np.linspace(0.0, 1.0, 12)
        runs = []
        for backend in ("dense", "csr"):
            batch = BatchDiffusion(
                irregular12, cost=cost, alpha=0.4, k=1, replicas=4, seed=21,
                backend=backend,
            )
            batch.run(250)
            runs.append(batch.loads.copy())
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_mass_conserved_and_shapes(self, regular16):
        batch = BatchDiffusion(
            regular16, cost=np.ones(16), alpha=0.25, k=2, replicas=3, seed=2
        )
        batch.run(500)
        np.testing.assert_allclose(batch.total_mass(), 1.0)
        assert batch.costs.shape == (3, 16)
        assert batch.commodity_load(4).shape == (3, 16)

    def test_loads_validation(self, regular16):
        with pytest.raises(ParameterError):
            BatchDiffusion(
                regular16, cost=np.ones(16), alpha=0.5, replicas=2,
                loads=np.zeros((5, 3)),
            )
        with pytest.raises(ParameterError):
            BatchDiffusion(
                regular16, cost=np.ones(5), alpha=0.5, replicas=2
            )
        with pytest.raises(ParameterError):
            BatchDiffusion(regular16, cost=np.ones(16), alpha=1.0, replicas=2)


# ----------------------------------------------------------------------
# BatchWalks
# ----------------------------------------------------------------------
def _walk_oracle_replay(adjacency, alpha, schedule, replicas, seed):
    """Hand-loop reimplementation of the batch walk replay law.

    Consumes, per non-noop step, one C-order ``(B, n)`` uniform plane
    from the same generator the batch uses, and applies the documented
    decode (coin ``u < 1 - alpha``; slot ``floor(u * k / (1 - alpha))``)
    walk by walk.
    """
    rng = as_generator(seed)
    n = adjacency.n
    beta = 1.0 - alpha
    positions = np.tile(np.arange(n, dtype=np.int64), (replicas, 1))
    for step in schedule:
        if step.is_noop:
            continue
        plane = rng.random((replicas, n))
        sample = np.asarray(step.sample, dtype=np.int64)
        k = len(sample)
        for b in range(replicas):
            for walk in range(n):
                if positions[b, walk] != step.node:
                    continue
                u = plane[b, walk]
                if u >= beta:
                    continue
                if k == 1:
                    positions[b, walk] = sample[0]
                else:
                    slot = min(int(u * (k / beta)), k - 1)
                    positions[b, walk] = sample[slot]
    return positions


class TestBatchWalks:
    @pytest.mark.parametrize("alpha,k", [(0.0, 1), (0.5, 1), (0.3, 2)])
    def test_shared_replay_bit_identical_to_oracle(self, regular16, alpha, k):
        schedule = _random_schedule(regular16, k, 60, seed=8, noop_every=9)
        batch = BatchWalks(
            regular16, cost=np.zeros(16), alpha=alpha, k=k, replicas=4,
            seed=31,
        )
        batch.replay(schedule)
        oracle = _walk_oracle_replay(regular16, alpha, schedule, 4, seed=31)
        np.testing.assert_array_equal(batch.positions, oracle)

    def test_facade_is_the_single_replica_batch(self, regular16):
        schedule = _random_schedule(regular16, 1, 120, seed=4)
        scalar = RandomWalkProcess(
            regular16, cost=np.zeros(16), alpha=0.4, seed=17
        )
        scalar.replay(schedule)
        batch = BatchWalks(
            regular16, cost=np.zeros(16), alpha=0.4, replicas=1, seed=17
        )
        batch.replay(schedule)
        np.testing.assert_array_equal(scalar.positions, batch.positions[0])

    def test_costs_and_occupancy(self, regular16):
        cost = np.linspace(5.0, 6.0, 16)
        batch = BatchWalks(
            regular16, cost=cost, alpha=0.5, replicas=3, seed=9
        )
        batch.run(400)
        occupancy = batch.occupancy()
        assert occupancy.shape == (3, 16)
        np.testing.assert_array_equal(occupancy.sum(axis=1), 16)
        assert np.all(batch.costs >= cost.min())
        assert np.all(batch.costs <= cost.max())

    def test_apply_selections_moves_only_selected(self, regular16):
        """With alpha = 0 every walk on the selected node moves into the
        recorded sample, all other walks stay."""
        primal = BatchNodeModel(
            regular16, np.zeros(16), 0.5, k=1, replicas=2, seed=5
        )
        primal.record_selections()
        primal.run(1)
        selections = primal.recorded_selections()
        batch = BatchWalks(
            regular16, cost=np.zeros(16), alpha=0.0, k=1, replicas=2, seed=6
        )
        before = batch.positions.copy()
        batch.apply_selections(selections)
        for b in range(2):
            node = selections.nodes[0, b]
            target = selections.picked[0, b, 0]
            moved = np.flatnonzero(batch.positions[b] != before[b])
            assert moved.tolist() == [node]
            assert batch.positions[b, node] == target

    def test_positions_validation(self, regular16):
        with pytest.raises(ParameterError):
            BatchWalks(
                regular16, cost=np.zeros(16), alpha=0.5, replicas=2,
                positions=np.full(16, 99),
            )


# ----------------------------------------------------------------------
# BatchCoalescing
# ----------------------------------------------------------------------
def _coalescing_oracle(adjacency, alpha, block, positions):
    """Hand-loop reimplementation of one coalescing block.

    ``block`` is the ``(R, B)`` uniform matrix the batch consumed;
    ``positions`` the ``(B, n)`` start labels, mutated in place.
    """
    n = adjacency.n
    beta = 1.0 - alpha
    for r in range(block.shape[0]):
        for b in range(block.shape[1]):
            u = block[r, b]
            scaled = u * n
            node = int(scaled)
            frac = scaled - node
            if frac < alpha:
                continue
            if not np.any(positions[b] == node):
                continue
            degree = int(adjacency.degrees[node])
            slot = min(max(int((frac - alpha) / beta * degree), 0), degree - 1)
            target = int(adjacency.neighbors[adjacency.offsets[node] + slot])
            positions[b][positions[b] == node] = target
    return positions


class TestBatchCoalescing:
    @pytest.mark.parametrize("alpha", [0.0, 0.4])
    def test_block_bit_identical_to_oracle(self, regular16, alpha):
        steps = 200  # single block (< default block_rounds)
        batch = BatchCoalescing(regular16, alpha=alpha, replicas=5, seed=13)
        batch.run(steps)
        oracle_rng = as_generator(13)
        block = oracle_rng.random((steps, 5))
        expected = _coalescing_oracle(
            regular16, alpha, block,
            np.tile(np.arange(16, dtype=np.int64), (5, 1)),
        )
        np.testing.assert_array_equal(batch.positions, expected)
        for b in range(5):
            assert batch.num_clusters[b] == len(set(expected[b].tolist()))

    def test_cluster_count_matches_occupancy(self, regular16):
        batch = BatchCoalescing(regular16, alpha=0.0, replicas=8, seed=3)
        for _ in range(40):
            batch.run(25)
            for b in range(8):
                assert batch.num_clusters[b] == len(
                    set(batch.positions[b].tolist())
                )

    def test_run_to_coalescence_times_positive(self, regular16):
        batch = BatchCoalescing(regular16, alpha=0.0, replicas=6, seed=7)
        times = batch.run_to_coalescence()
        assert np.all(times > 0)
        assert np.all(batch.num_clusters == 1)
        # Already-coalesced replicas report 0 on a second call.
        np.testing.assert_array_equal(
            batch.run_to_coalescence(), np.zeros(6, dtype=np.int64)
        )

    def test_budget_raises(self, regular16):
        batch = BatchCoalescing(regular16, alpha=0.0, replicas=4, seed=7)
        with pytest.raises(ConvergenceError):
            batch.run_to_coalescence(max_steps=2)

    def test_untracked_positions_same_times(self, regular16):
        tracked = BatchCoalescing(
            regular16, alpha=0.0, replicas=6, seed=19, track_positions=True
        )
        bare = BatchCoalescing(
            regular16, alpha=0.0, replicas=6, seed=19, track_positions=False
        )
        assert bare.positions is None
        np.testing.assert_array_equal(
            tracked.run_to_coalescence(), bare.run_to_coalescence()
        )

    def test_facade_matches_batch_column(self, regular16):
        scalar = CoalescingWalks(regular16, alpha=0.2, seed=23)
        batch = BatchCoalescing(regular16, alpha=0.2, replicas=1, seed=23)
        scalar_time = scalar.run_to_coalescence()
        batch_time = int(batch.run_to_coalescence()[0])
        assert scalar_time == batch_time

    def test_meeting_time_estimate_batched(self, regular16):
        estimate = meeting_time_estimate(regular16, replicas=12, seed=5)
        assert estimate > 0


# ----------------------------------------------------------------------
# DualSpec + caching
# ----------------------------------------------------------------------
class TestDualSpec:
    def test_kind_and_cost_validation(self, regular16):
        with pytest.raises(ParameterError):
            DualSpec(kind="bogus", adjacency=regular16, alpha=0.5)
        with pytest.raises(ParameterError):
            DualSpec(kind="walks", adjacency=regular16, alpha=0.5)
        with pytest.raises(ParameterError):
            DualSpec(
                kind="diffusion", adjacency=regular16, alpha=0.5,
                cost=np.ones(3),
            )

    def test_cache_token_splits_configurations(self, regular16, irregular12):
        cost = np.ones(16)
        base = DualSpec(
            kind="walks", adjacency=regular16, alpha=0.5, k=1, cost=cost
        )
        assert base == DualSpec(
            kind="walks", adjacency=regular16, alpha=0.5, k=1, cost=cost.copy()
        )
        others = [
            DualSpec(kind="diffusion", adjacency=regular16, alpha=0.5, cost=cost),
            DualSpec(kind="walks", adjacency=regular16, alpha=0.25, cost=cost),
            DualSpec(kind="walks", adjacency=regular16, alpha=0.5, k=2, cost=cost),
            DualSpec(kind="walks", adjacency=regular16, alpha=0.5, cost=cost * 2),
            DualSpec(kind="coalescing", adjacency=regular16, alpha=0.5),
        ]
        tokens = {spec.cache_token() for spec in others}
        tokens.add(base.cache_token())
        assert len(tokens) == len(others) + 1

    def test_build_dispatches_kinds(self, regular16):
        cost = np.zeros(16)
        diff = DualSpec(
            kind="diffusion", adjacency=regular16, alpha=0.5, cost=cost
        ).build(3, seed=1)
        walks = DualSpec(
            kind="walks", adjacency=regular16, alpha=0.5, cost=cost
        ).build(3, seed=1)
        coal = DualSpec(kind="coalescing", adjacency=regular16, alpha=0.0).build(
            3, seed=1
        )
        assert isinstance(diff, BatchDiffusion)
        assert isinstance(walks, BatchWalks)
        assert isinstance(coal, BatchCoalescing)
        assert coal.positions is None  # sampling builds label-free batches

    def test_coalescence_sampler_caches(self, regular16, tmp_path):
        spec = DualSpec(kind="coalescing", adjacency=regular16, alpha=0.0)
        cache = ResultCache(tmp_path)
        first = sample_coalescence_times(spec, 8, seed=42, cache=cache)
        assert len(list(tmp_path.glob("*.npy"))) == 1
        second = sample_coalescence_times(spec, 8, seed=42, cache=cache)
        np.testing.assert_array_equal(first, second)
        # A different alpha must miss.
        lazy = DualSpec(kind="coalescing", adjacency=regular16, alpha=0.5)
        sample_coalescence_times(lazy, 8, seed=42, cache=cache)
        assert len(list(tmp_path.glob("*.npy"))) == 2

    def test_coalescence_sampler_shards_and_processes(self, regular16):
        spec = DualSpec(kind="coalescing", adjacency=regular16, alpha=0.0)
        single = sample_coalescence_times(spec, 10, seed=3, shard_size=4)
        multi = sample_coalescence_times(
            spec, 10, seed=3, shard_size=4, processes=2
        )
        np.testing.assert_array_equal(single, multi)

    def test_sampler_rejects_wrong_kind(self, regular16):
        spec = DualSpec(
            kind="walks", adjacency=regular16, alpha=0.5, cost=np.zeros(16)
        )
        with pytest.raises(ParameterError):
            sample_coalescence_times(spec, 4)


# ----------------------------------------------------------------------
# The loop oracles behind engine="loop"
# ----------------------------------------------------------------------
class TestLoopEnginePaths:
    def test_verification_checks_accept_loop_engine(self, regular16):
        from repro.dual.verification import (
            check_lemma_53,
            check_lemma_55,
            check_proposition_54,
        )

        cost = np.linspace(-1.0, 1.0, 16)
        schedule = _random_schedule(regular16, 1, 10, seed=1)
        for engine in ("batch", "loop"):
            check = check_lemma_53(
                regular16, cost, 0.5, 1, schedule, walk=3, replicas=60,
                seed=2, engine=engine,
            )
            assert np.isfinite(check.estimate)
            check = check_proposition_54(
                regular16, cost, 0.5, 2, steps=8, pair=(0, 5), replicas=40,
                seed=3, engine=engine,
            )
            assert np.isfinite(check.standard_error)
        check = check_lemma_55(
            regular16, cost, 0.5, 1, pair=(0, 7), horizon=20, replicas=30,
            seed=4, engine="loop",
        )
        assert np.isfinite(check.estimate)

    def test_verification_rejects_unknown_engine(self, regular16):
        from repro.dual.verification import check_lemma_53

        with pytest.raises(ParameterError):
            check_lemma_53(
                regular16, np.zeros(16), 0.5, 1, Schedule(), walk=0,
                replicas=4, engine="bogus",
            )

    def test_sample_meeting_times_engines_agree_in_law(self, regular16):
        from repro.sim import sample_meeting_times

        batch = sample_meeting_times(regular16, 12, seed=5, engine="batch")
        loop = sample_meeting_times(regular16, 12, seed=5, engine="loop")
        assert batch.shape == loop.shape == (12,)
        assert np.all(batch > 0) and np.all(loop > 0)
        with pytest.raises(ParameterError):
            sample_meeting_times(regular16, 4, engine="bogus")


# ----------------------------------------------------------------------
# The Lemma 5.2 acceptance harness
# ----------------------------------------------------------------------
class TestEngineScaleDuality:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("k", [1, 2])
    def test_node_duality_at_scale(self, kernel, k):
        """Acceptance: n >= 256, B >= 64, every kernel, machine precision."""
        adjacency = Adjacency.from_graph(random_regular_graph(256, 4, seed=0))
        initial = np.cos(np.arange(256) * 0.37) * 3.0
        report = run_duality_batch(
            adjacency, initial, alpha=0.5, k=k, steps=512, replicas=64,
            seed=123, kernel=kernel,
        )
        assert report.replicas == 64
        assert report.errors.shape == (64,)
        assert report.verified(), f"max error {report.max_error}"
        assert report.max_error <= 1e-12

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_edge_duality_at_scale(self, kernel):
        adjacency = Adjacency.from_graph(random_regular_graph(256, 4, seed=1))
        initial = np.sin(np.arange(256) * 0.21)
        report = run_duality_batch(
            adjacency, initial, alpha=0.5, steps=512, replicas=64, seed=5,
            kind="edge", kernel=kernel,
        )
        assert report.verified(), f"max error {report.max_error}"

    def test_irregular_and_lazy_duality(self):
        adjacency = Adjacency.from_graph(star_graph(40))
        initial = np.linspace(-1.0, 2.0, adjacency.n)
        report = run_duality_batch(
            adjacency, initial, alpha=0.6, k=1, steps=300, replicas=16,
            seed=2, lazy=True, kernel="fused",
        )
        assert report.verified(), f"max error {report.max_error}"

    def test_duality_fails_without_reversal(self, regular16):
        """The reversal is essential: applying the *forward* stream must
        not reproduce xi(T) in general."""
        initial = np.linspace(-3.0, 3.0, 16)
        primal = BatchNodeModel(
            regular16, initial, 0.5, k=1, replicas=4, seed=6, kernel="fused"
        )
        primal.record_selections()
        primal.run(120)
        selections = primal.recorded_selections()
        diffusion = BatchDiffusion(
            regular16, cost=initial, alpha=0.5, k=1, replicas=4
        )
        diffusion.apply_selections(selections)  # NOT reversed
        assert not np.allclose(diffusion.costs, primal.values, atol=1e-6)
