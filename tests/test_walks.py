"""Tests for the Random Walk Process (Section 5.2)."""

import numpy as np
import pytest

from repro.core.schedule import Schedule, SelectionStep
from repro.dual.diffusion import DiffusionProcess
from repro.dual.walks import RandomWalkProcess
from repro.exceptions import ParameterError


class TestConstruction:
    def test_default_positions_identity(self, petersen):
        walks = RandomWalkProcess(petersen, cost=np.zeros(10), alpha=0.5)
        assert walks.positions.tolist() == list(range(10))

    def test_custom_positions_validated(self, triangle):
        with pytest.raises(ParameterError):
            RandomWalkProcess(
                triangle, cost=[0.0] * 3, alpha=0.5, positions=[0, 1, 7]
            )

    def test_k_validation(self, triangle):
        with pytest.raises(ParameterError):
            RandomWalkProcess(triangle, cost=[0.0] * 3, alpha=0.5, k=9)


class TestMovementSemantics:
    def test_only_walks_on_selected_node_move(self, cycle6):
        walks = RandomWalkProcess(cycle6, cost=np.zeros(6), alpha=0.0, seed=1)
        before = walks.positions.copy()
        walks.step_with(SelectionStep(2, (3,)))
        moved = walks.positions != before
        # Only the walk that was at node 2 may have moved (alpha=0 -> must).
        assert np.flatnonzero(moved).tolist() == [2]
        assert walks.positions[2] == 3

    def test_alpha_one_like_behaviour(self, cycle6):
        # With alpha near 1 the walk rarely moves.
        walks = RandomWalkProcess(cycle6, cost=np.zeros(6), alpha=0.99, seed=2)
        for _ in range(200):
            walks.step_with(SelectionStep(0, (1,)))
        # Walk 0 moved at most a few times; everyone else never.
        assert walks.positions[1:].tolist() == list(range(1, 6))

    def test_moves_target_sample_members_only(self, petersen):
        walks = RandomWalkProcess(petersen, cost=np.zeros(10), alpha=0.0, seed=3)
        neighbours = tuple(sorted(petersen.neighbors(4))[:2])
        walks.step_with(SelectionStep(4, neighbours))
        assert walks.positions[4] in neighbours

    def test_move_probability_one_minus_alpha(self, triangle):
        alpha = 0.3
        moves = 0
        trials = 30_000
        walks = RandomWalkProcess(triangle, cost=np.zeros(3), alpha=alpha, seed=4)
        for _ in range(trials):
            walks.positions[:] = [0, 1, 2]
            walks.step_with(SelectionStep(0, (1,)))
            if walks.positions[0] == 1:
                moves += 1
        assert moves / trials == pytest.approx(1.0 - alpha, abs=0.01)

    def test_occupancy_sums_to_n(self, petersen):
        walks = RandomWalkProcess(petersen, cost=np.zeros(10), alpha=0.5, seed=5)
        for _ in range(300):
            walks.step()
        assert walks.occupancy().sum() == 10

    def test_costs_lookup(self, triangle):
        cost = np.array([10.0, 20.0, 30.0])
        walks = RandomWalkProcess(triangle, cost=cost, alpha=0.5)
        assert walks.costs.tolist() == [10.0, 20.0, 30.0]
        walks.positions[:] = [2, 2, 2]
        assert walks.costs.tolist() == [30.0, 30.0, 30.0]


class TestDualityWithDiffusion:
    def test_lemma_53_expected_position_matches_diffusion(self, cycle6):
        """E[q~(u)(t) | chi] = R(t) e(u): empirical occupancy of many walk
        replicas driven by the SAME schedule matches the diffusion loads."""
        rng = np.random.default_rng(7)
        schedule = Schedule.from_pairs(
            [
                (int(u), (int(rng.choice(list(cycle6.neighbors(int(u))))),))
                for u in rng.integers(0, 6, size=15)
            ]
        )
        alpha = 0.5
        diffusion = DiffusionProcess(cycle6, cost=np.zeros(6), alpha=alpha, k=1)
        diffusion.replay(schedule)

        replicas = 30_000
        occupancy = np.zeros((6, 6))  # [start, end]
        walks = RandomWalkProcess(cycle6, cost=np.zeros(6), alpha=alpha, seed=8)
        for _ in range(replicas):
            walks.positions[:] = np.arange(6)
            walks.replay(schedule)
            for start, end in enumerate(walks.positions):
                occupancy[start, end] += 1
        occupancy /= replicas
        # diffusion.loads[:, u] is the distribution of the walk started at u.
        assert np.allclose(occupancy.T, diffusion.loads, atol=0.015)

    def test_lemma_53_expected_cost(self, triangle, rng):
        cost = rng.normal(size=3)
        schedule = Schedule.from_pairs([(0, (1,)), (1, (2,)), (2, (0,)), (0, (2,))])
        alpha = 0.4
        diffusion = DiffusionProcess(triangle, cost=cost, alpha=alpha, k=1)
        diffusion.replay(schedule)
        replicas = 40_000
        total = np.zeros(3)
        walks = RandomWalkProcess(triangle, cost=cost, alpha=alpha, seed=9)
        for _ in range(replicas):
            walks.positions[:] = np.arange(3)
            walks.replay(schedule)
            total += walks.costs
        assert np.allclose(total / replicas, diffusion.costs, atol=0.02)
