"""Tests for the step matrices B(t), F(t) and products R(t)."""

import numpy as np
import pytest

from repro.core.node_model import NodeModel
from repro.core.schedule import Schedule, SelectionStep
from repro.dual import matrices
from repro.exceptions import ParameterError


class TestDiffusionStepMatrix:
    def test_matches_eq4_entries(self):
        # n = 3, selection (u=0, S={1, 2}), alpha = 1/2: column 0 spreads.
        b = matrices.diffusion_step_matrix(3, SelectionStep(0, (1, 2)), alpha=0.5)
        expected = np.array(
            [
                [0.5, 0.0, 0.0],
                [0.25, 1.0, 0.0],
                [0.25, 0.0, 1.0],
            ]
        )
        assert np.allclose(b, expected)

    def test_column_stochastic(self):
        b = matrices.diffusion_step_matrix(4, SelectionStep(2, (0, 3)), alpha=0.3)
        assert np.allclose(b.sum(axis=0), 1.0)

    def test_noop_is_identity(self):
        b = matrices.diffusion_step_matrix(3, SelectionStep(1, ()), alpha=0.5)
        assert np.allclose(b, np.eye(3))

    def test_validation(self):
        with pytest.raises(ParameterError):
            matrices.diffusion_step_matrix(3, SelectionStep(5, (1,)), alpha=0.5)
        with pytest.raises(ParameterError):
            matrices.diffusion_step_matrix(3, SelectionStep(0, (7,)), alpha=0.5)
        with pytest.raises(ParameterError):
            matrices.diffusion_step_matrix(3, SelectionStep(0, (1,)), alpha=1.0)


class TestAveragingStepMatrix:
    def test_is_transpose_of_b(self):
        step = SelectionStep(1, (0, 2))
        b = matrices.diffusion_step_matrix(3, step, alpha=0.25)
        f = matrices.averaging_step_matrix(3, step, alpha=0.25)
        assert np.allclose(f, b.T)

    def test_row_stochastic_not_doubly(self):
        f = matrices.averaging_step_matrix(3, SelectionStep(0, (1,)), alpha=0.5)
        assert matrices.is_stochastic(f, axis=1)
        assert not matrices.is_stochastic(f, axis=0)

    def test_applies_definition_21(self):
        # xi' = F xi must equal the unilateral update.
        f = matrices.averaging_step_matrix(3, SelectionStep(0, (1, 2)), alpha=0.5)
        xi = np.array([6.0, 8.0, 9.0])
        expected = np.array([0.5 * 6 + 0.25 * 8 + 0.25 * 9, 8.0, 9.0])
        assert np.allclose(f @ xi, expected)


class TestProducts:
    def test_product_accumulates_left(self):
        steps = [SelectionStep(0, (1,)), SelectionStep(1, (2,))]
        r = matrices.product_matrix(3, steps, alpha=0.5)
        b1 = matrices.diffusion_step_matrix(3, steps[0], alpha=0.5)
        b2 = matrices.diffusion_step_matrix(3, steps[1], alpha=0.5)
        assert np.allclose(r, b2 @ b1)

    def test_averaging_product_maps_initial_to_final(self, petersen, rng):
        initial = rng.normal(size=10)
        process = NodeModel(
            petersen, initial, alpha=0.5, k=2, seed=1, record_schedule=True
        )
        process.run(100)
        product = matrices.averaging_product_matrix(10, process.schedule, alpha=0.5)
        assert np.allclose(product @ initial, process.values)

    def test_product_column_stochastic(self):
        schedule = Schedule.from_pairs([(0, (1,)), (2, (0,)), (1, (2,))])
        r = matrices.product_matrix(3, schedule, alpha=0.3)
        assert matrices.is_stochastic(r, axis=0)

    def test_empty_product_is_identity(self):
        assert np.allclose(matrices.product_matrix(4, Schedule(), 0.5), np.eye(4))


class TestIsStochastic:
    def test_rejects_negative_entries(self):
        matrix = np.array([[1.5, -0.5], [0.0, 1.0]])
        assert not matrices.is_stochastic(matrix)

    def test_rejects_bad_row_sums(self):
        matrix = np.array([[0.5, 0.2], [0.0, 1.0]])
        assert not matrices.is_stochastic(matrix)
