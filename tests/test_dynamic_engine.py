"""Cross-layer conformance tests for the dynamic-graph engine.

The dynamic analogue of ``test_engine.py`` / ``test_kernels.py``: the
*pre-engine hand loop* — per-segment scalar NodeModel/EdgeModel
composition, reimplemented here as :func:`scalar_dynamic_reference` —
is the correctness oracle.  One recorded ``Schedule`` plus the
schedule's snapshot stream must replay bit-identically through

1. the scalar :class:`~repro.core.dynamic.DynamicAveraging` facade,
2. the batch ``"numpy"`` kernel, and
3. the fused / jit block kernels,

and free-running dynamic batches must keep every static guarantee:
fused == numpy stream equality (node ``k = 1``), dense == CSR,
fused == jit bit-equivalence, chunk invariance of ``run()``, and
``run_until_phi`` hitting times exact and invariant to ``block_rounds``
*across switch boundaries*.  The cache-key audit at the bottom pins the
disk-cache contract: a hit across differing kernel stream class,
``block_rounds``, or graph-schedule hash must be impossible.
"""

import pickle

import networkx as nx
import numpy as np
import pytest

from repro.core.dynamic import DynamicAveraging
from repro.core.edge_model import EdgeModel
from repro.core.initial import center_simple, rademacher_values
from repro.core.node_model import NodeModel
from repro.core.schedule import Schedule
from repro.engine import (
    SCHEDULE_KINDS,
    BatchEdgeModel,
    BatchNodeModel,
    CyclicSchedule,
    EngineSpec,
    RandomSchedule,
    ResultCache,
    RewiringSchedule,
    build_schedule,
    numba_available,
    sample_t_eps_batch,
)
from repro.exceptions import ParameterError
from repro.graphs.adjacency import Adjacency
from repro.rng import as_generator

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed"
)


@pytest.fixture
def snapshots12():
    return [
        Adjacency.from_graph(nx.cycle_graph(12)),
        Adjacency.from_graph(nx.random_regular_graph(4, 12, seed=1)),
        Adjacency.from_graph(
            nx.connected_watts_strogatz_graph(12, 4, 0.3, seed=2)
        ),
    ]


@pytest.fixture
def values12():
    return center_simple(rademacher_values(12, seed=3))


def scalar_dynamic_reference(
    schedule, initial, model="node", alpha=0.5, k=1, steps=300, seed=0,
    lazy=False,
):
    """The pre-engine hand loop: scalar processes composed per segment.

    Threads one generator through the segments, records the full
    selection sequence ``chi``, and returns the final state, the
    recorded schedule and the last segment's process (for ``phi``).
    This is deliberately independent of :mod:`repro.engine` — it is the
    oracle the engine must match bit for bit under replay.
    """
    rng = as_generator(seed)
    values = np.asarray(initial, dtype=np.float64).copy()
    chi = Schedule()
    t = 0
    process = None
    while t < steps:
        segment = min(schedule.rounds_until_switch(t), steps - t)
        adjacency = schedule.snapshots[schedule.snapshot_at(t)]
        if model == "node":
            process = NodeModel(
                adjacency, values, alpha=alpha, k=k, seed=rng, lazy=lazy,
                record_schedule=True,
            )
        else:
            process = EdgeModel(
                adjacency, values, alpha=alpha, seed=rng, lazy=lazy,
                record_schedule=True,
            )
        process.run(segment)
        for step in process.schedule:
            chi.append(step.node, step.sample)
        values = process.values.copy()
        t += segment
    return values, chi, process


class TestScheduleStream:
    """GraphSchedule: deterministic streams, validation, identity."""

    def test_cyclic_ids(self, snapshots12):
        schedule = CyclicSchedule(snapshots12, 5)
        assert [schedule.snapshot_id(j) for j in range(5)] == [0, 1, 2, 0, 1]
        assert schedule.snapshot_at(0) == 0
        assert schedule.snapshot_at(4) == 0
        assert schedule.snapshot_at(5) == 1
        assert schedule.rounds_until_switch(0) == 5
        assert schedule.rounds_until_switch(13) == 2
        np.testing.assert_array_equal(
            schedule.id_stream(3, 5), [0, 0, 1, 1, 1]
        )

    def test_random_ids_deterministic_random_access(self, snapshots12):
        a = RandomSchedule(snapshots12, 7, seed=4)
        b = RandomSchedule(snapshots12, 7, seed=4)
        # Random access (out of order) yields the same stream.
        ids_backwards = [b.snapshot_id(j) for j in reversed(range(50))][::-1]
        assert [a.snapshot_id(j) for j in range(50)] == ids_backwards
        assert set(ids_backwards) == {0, 1, 2}
        other = RandomSchedule(snapshots12, 7, seed=5)
        assert [other.snapshot_id(j) for j in range(50)] != ids_backwards

    def test_rewire_preserves_degrees_and_connectivity(self, snapshots12):
        base = snapshots12[1]  # 4-regular
        schedule = RewiringSchedule(
            base, num_snapshots=4, switch_every=9, rewires=3, seed=0
        )
        assert schedule.num_snapshots == 4
        assert schedule.snapshots[0] == base
        for adjacency in schedule.snapshots:
            np.testing.assert_array_equal(adjacency.degrees, base.degrees)
            assert nx.is_connected(adjacency.to_networkx())
        # The churn actually rewires: not every snapshot equals the base.
        assert any(a != base for a in schedule.snapshots[1:])

    def test_uniform_pi_flag(self, snapshots12):
        regular = [
            Adjacency.from_graph(nx.random_regular_graph(4, 12, seed=s))
            for s in range(2)
        ]
        assert CyclicSchedule(regular, 5).uniform_pi
        assert not CyclicSchedule(snapshots12, 5).uniform_pi  # mixed degrees
        star = Adjacency.from_graph(nx.star_graph(11))
        assert not CyclicSchedule([regular[0], star], 5).uniform_pi

    def test_validation(self, snapshots12):
        with pytest.raises(ParameterError):
            CyclicSchedule([], 5)
        with pytest.raises(ParameterError):
            CyclicSchedule(snapshots12, 0)
        with pytest.raises(ParameterError, match="same node set"):
            CyclicSchedule([nx.cycle_graph(10), nx.cycle_graph(12)], 5)
        with pytest.raises(ParameterError):
            RandomSchedule(snapshots12, 5, seed=None)
        with pytest.raises(ParameterError):
            build_schedule("warp", snapshots12, 5)
        assert set(SCHEDULE_KINDS) == {"cyclic", "random", "rewire"}

    def test_build_schedule_kinds(self, snapshots12):
        for kind in SCHEDULE_KINDS:
            schedule = build_schedule(kind, snapshots12, 6, seed=1)
            assert schedule.kind == kind
            assert schedule.num_snapshots == 3

    def test_content_hash_identity(self, snapshots12):
        base = CyclicSchedule(snapshots12, 7)
        assert base == CyclicSchedule(list(snapshots12), 7)
        assert base.content_hash() != CyclicSchedule(snapshots12, 8).content_hash()
        assert base.content_hash() != RandomSchedule(
            snapshots12, 7, seed=0
        ).content_hash()
        reordered = CyclicSchedule(snapshots12[::-1], 7)
        assert base.content_hash() != reordered.content_hash()
        assert (
            RandomSchedule(snapshots12, 7, seed=0).content_hash()
            != RandomSchedule(snapshots12, 7, seed=1).content_hash()
        )

    def test_pickle_round_trip(self, snapshots12):
        schedule = RandomSchedule(snapshots12, 7, seed=4)
        ids = [schedule.snapshot_id(j) for j in range(10)]
        clone = pickle.loads(pickle.dumps(schedule))
        assert clone == schedule
        assert [clone.snapshot_id(j) for j in range(10)] == ids


class TestDynamicReplayConformance:
    """One recorded chi + snapshot stream => bit-identical trajectories."""

    @pytest.mark.parametrize("kernel", ["numpy", "fused", "jit"])
    @pytest.mark.parametrize("model,k", [("node", 1), ("node", 2), ("edge", 1)])
    def test_batch_matches_scalar_oracle(
        self, snapshots12, values12, kernel, model, k
    ):
        schedule = CyclicSchedule(snapshots12, 7)
        reference, chi, last = scalar_dynamic_reference(
            schedule, values12, model=model, k=k, steps=300, seed=5
        )
        cls = BatchNodeModel if model == "node" else BatchEdgeModel
        kwargs = {"k": k} if model == "node" else {}
        batch = cls(
            schedule, values12, 0.5, replicas=3, seed=99, kernel=kernel,
            **kwargs,
        )
        batch.replay(chi)
        assert batch.t == 300
        np.testing.assert_array_equal(
            batch.values, np.broadcast_to(reference, batch.values.shape)
        )
        # phi is measured against the snapshot governing the next round,
        # exactly like the oracle's last rebuilt tracker.
        assert batch.phi[0] == pytest.approx(last.phi, abs=1e-12)

    def test_scalar_facade_matches_oracle(self, snapshots12, values12):
        schedule = CyclicSchedule(snapshots12, 7)
        reference, chi, _ = scalar_dynamic_reference(
            schedule, values12, model="node", k=2, steps=300, seed=6
        )
        facade = DynamicAveraging(
            schedule, values12, model="node", alpha=0.5, k=2, seed=1
        )
        facade.replay(chi)
        assert facade.t == 300
        np.testing.assert_array_equal(facade.values, reference)

    def test_lazy_noops_replay(self, snapshots12, values12):
        schedule = CyclicSchedule(snapshots12, 11)
        reference, chi, _ = scalar_dynamic_reference(
            schedule, values12, model="node", k=1, steps=200, seed=7,
            lazy=True,
        )
        assert any(step.is_noop for step in chi)
        batch = BatchNodeModel(
            schedule, values12, 0.5, k=1, replicas=2, seed=99, kernel="fused"
        )
        batch.replay(chi)
        assert batch.t == 200
        np.testing.assert_array_equal(batch.values[0], reference)

    def test_random_schedule_replay(self, snapshots12, values12):
        schedule = RandomSchedule(snapshots12, 9, seed=12)
        reference, chi, _ = scalar_dynamic_reference(
            schedule, values12, model="edge", steps=250, seed=8
        )
        batch = BatchEdgeModel(
            schedule, values12, 0.5, replicas=2, seed=99, kernel="fused"
        )
        batch.replay(chi)
        np.testing.assert_array_equal(batch.values[1], reference)


class TestDynamicFreeRunning:
    """Static kernel guarantees survive time-varying topologies."""

    def test_fused_matches_numpy_stream_node_k1(self, snapshots12, values12):
        schedule = CyclicSchedule(snapshots12, 13)
        legacy = BatchNodeModel(
            schedule, values12, 0.4, k=1, replicas=6, seed=7, kernel="numpy"
        )
        fused = BatchNodeModel(
            schedule, values12, 0.4, k=1, replicas=6, seed=7, kernel="fused"
        )
        legacy.run(600)
        fused.run(600)
        np.testing.assert_array_equal(fused.values, legacy.values)
        np.testing.assert_allclose(fused.phi, legacy.phi, atol=1e-13)

    @pytest.mark.parametrize("make_kwargs", [
        {"k": 2}, {"k": 1, "lazy": True},
    ])
    def test_chunk_invariance_across_switches(
        self, snapshots12, values12, make_kwargs
    ):
        schedule = CyclicSchedule(snapshots12, 17)

        def make():
            return BatchNodeModel(
                schedule, values12, 0.5, replicas=5, seed=5, kernel="fused",
                **make_kwargs,
            )

        one = make()
        one.run(503)
        chunked = make()
        for chunk in (1, 3, 130, 17, 256, 96):
            chunked.run(chunk)
        np.testing.assert_array_equal(one.values, chunked.values)

    def test_edge_chunk_invariance(self, snapshots12, values12):
        schedule = RandomSchedule(snapshots12, 10, seed=3)

        def make():
            return BatchEdgeModel(
                schedule, values12, 0.5, replicas=4, seed=5, kernel="fused",
                lazy=True,
            )

        one = make()
        one.run(403)
        chunked = make()
        for chunk in (2, 99, 17, 256, 29):
            chunked.run(chunk)
        np.testing.assert_array_equal(one.values, chunked.values)

    @pytest.mark.parametrize("k", [1, 2])
    def test_dense_and_csr_identical(self, snapshots12, values12, k):
        schedule = CyclicSchedule(snapshots12, 9)
        dense = BatchNodeModel(
            schedule, values12, 0.5, k=k, replicas=5, seed=11,
            backend="dense", kernel="fused",
        )
        csr = BatchNodeModel(
            schedule, values12, 0.5, k=k, replicas=5, seed=11,
            backend="csr", kernel="fused",
        )
        dense.run(400)
        csr.run(400)
        np.testing.assert_array_equal(dense.values, csr.values)

    @needs_numba
    def test_jit_bit_identical_to_fused(self, snapshots12, values12):
        schedule = CyclicSchedule(snapshots12, 13)
        fused = BatchNodeModel(
            schedule, values12, 0.5, k=1, replicas=6, seed=13, kernel="fused"
        )
        jit = BatchNodeModel(
            schedule, values12, 0.5, k=1, replicas=6, seed=13, kernel="jit"
        )
        assert jit.kernel == "jit"
        fused.run(500)
        jit.run(500)
        np.testing.assert_array_equal(fused.values, jit.values)

    def test_facade_is_a_single_replica_batch(self, snapshots12, values12):
        """DynamicAveraging is the engine: bit-identical, not just in law."""
        facade = DynamicAveraging(
            snapshots12, values12, model="node", alpha=0.5, k=1,
            switch_every=19, seed=21,
        )
        facade.run(300)
        batch = BatchNodeModel(
            CyclicSchedule(snapshots12, 19), values12, 0.5, k=1,
            replicas=1, seed=as_generator(21),
        )
        batch.run(300)
        np.testing.assert_array_equal(facade.values, batch.values[0])

    def test_stacked_dense_table_shared(self, snapshots12, values12):
        batch = BatchNodeModel(
            CyclicSchedule(snapshots12, 5), values12, 0.5, k=1, replicas=2,
            seed=0, backend="dense",
        )
        stack = batch._samplers.table
        assert stack is not None
        assert stack.shape == (3, 12, max(a.d_max for a in snapshots12))
        for s, backend in enumerate(batch._samplers.backends):
            assert backend._table.base is stack or np.shares_memory(
                backend._table, stack
            )


class TestDynamicHittingTimes:
    """Chunked detection stays exact across switch boundaries."""

    def _hits(self, make, block_rounds, epsilon=1e-4, max_steps=500_000):
        batch = make()
        batch.block_rounds = block_rounds
        return batch, batch.run_until_phi(epsilon, max_steps)

    @pytest.mark.parametrize("block_rounds", [7, 64, 256, 1000])
    def test_block_rounds_invariant_node(
        self, snapshots12, values12, block_rounds
    ):
        schedule = CyclicSchedule(snapshots12, 23)

        def make():
            return BatchNodeModel(
                schedule, values12, 0.5, k=1, replicas=12, seed=9,
                kernel="fused",
            )

        ref_batch, reference = self._hits(make, 1)
        assert (reference > 0).all()
        assert reference.max() > 23  # crossings land beyond a switch
        batch, hits = self._hits(make, block_rounds)
        np.testing.assert_array_equal(hits, reference)
        # Crossed replicas are rewound to the exact crossing state, so
        # the frozen values are block-size invariant too.  (phi is not
        # compared directly: it is measured against the snapshot of the
        # *current* round, and the over-stepped t differs by block size.)
        np.testing.assert_array_equal(batch.values, ref_batch.values)

    @pytest.mark.parametrize("block_rounds", [5, 200])
    def test_block_rounds_invariant_edge_lazy(
        self, snapshots12, values12, block_rounds
    ):
        schedule = RandomSchedule(snapshots12, 14, seed=6)

        def make():
            return BatchEdgeModel(
                schedule, values12, 0.5, replicas=8, seed=11, kernel="fused",
                lazy=True,
            )

        _, reference = self._hits(make, 1)
        batch, hits = self._hits(make, block_rounds)
        np.testing.assert_array_equal(hits, reference)

    def test_numpy_kernel_agrees_until_first_freeze(
        self, snapshots12, values12
    ):
        """Node k=1 shares the RNG layout while every replica is live,
        so the first crossing (round and replica) must agree exactly;
        after a freeze the per-round kernel's draws shrink with the
        active set and the streams legitimately diverge (which is why
        ``"numpy"`` is its own cache stream class)."""
        schedule = CyclicSchedule(snapshots12, 23)
        legacy = BatchNodeModel(
            schedule, values12, 0.5, k=1, replicas=8, seed=15, kernel="numpy"
        )
        fused = BatchNodeModel(
            schedule, values12, 0.5, k=1, replicas=8, seed=15, kernel="fused"
        )
        legacy_hits = legacy.run_until_phi(1e-4, 500_000)
        fused_hits = fused.run_until_phi(1e-4, 500_000)
        assert legacy_hits.min() == fused_hits.min()
        assert legacy_hits.argmin() == fused_hits.argmin()

    def test_budget_respected(self, snapshots12, values12):
        batch = BatchNodeModel(
            CyclicSchedule(snapshots12, 6), values12, 0.5, k=1, replicas=3,
            seed=2, kernel="fused",
        )
        times = batch.run_until_phi(1e-14, 50)
        np.testing.assert_array_equal(times, -1)
        assert batch.t == 50


class TestDynamicDriver:
    def test_spec_builds_dynamic_batch(self, snapshots12, values12):
        schedule = CyclicSchedule(snapshots12, 8)
        spec = EngineSpec.for_schedule("node", schedule, values12, 0.5, k=1)
        batch = spec.build(4, seed=0)
        assert batch.graph_schedule is schedule
        spec_edge = EngineSpec.for_schedule("edge", schedule, values12, 0.5)
        assert spec_edge.build(2, seed=0).graph_schedule is schedule

    def test_spec_adjacency_must_match_schedule(self, snapshots12, values12):
        schedule = CyclicSchedule(snapshots12, 8)
        with pytest.raises(ParameterError, match="first snapshot"):
            EngineSpec(
                "node", snapshots12[1], values12, 0.5, 1,
                graph_schedule=schedule,
            )

    def test_block_rounds_threaded(self, snapshots12, values12):
        spec = EngineSpec(
            "node", snapshots12[1], values12, 0.5, 1, block_rounds=64
        )
        assert spec.build(2, seed=0).block_rounds == 64
        with pytest.raises(ParameterError):
            EngineSpec(
                "node", snapshots12[1], values12, 0.5, 1, block_rounds=0
            )

    def test_sharded_dynamic_runs_identical(self, snapshots12, values12):
        schedule = CyclicSchedule(snapshots12, 11)
        spec = EngineSpec.for_schedule(
            "node", schedule, values12, 0.5, k=1, kernel="fused"
        )
        serial = sample_t_eps_batch(
            spec, 1e-4, 24, seed=7, max_steps=500_000, shard_size=8,
            processes=1,
        )
        parallel = sample_t_eps_batch(
            spec, 1e-4, 24, seed=7, max_steps=500_000, shard_size=8,
            processes=2,
        )
        np.testing.assert_array_equal(serial, parallel)


class TestDynamicExperimentEndToEnd:
    def test_exp_dyn_cached_rerun_resumes_for_free(self, tmp_path):
        """The acceptance path: `repro run` a dynamic experiment, then
        re-run the identical spec — every sample array must come back
        from the engine's disk cache, byte for byte."""
        from repro.api import RunSpec, execute

        spec = RunSpec(
            "EXP-DYN",
            overrides={
                "n": 12, "snapshots": 2, "switch_every": 8, "replicas": 6,
                "cache_dir": str(tmp_path),
            },
        )
        first = execute(spec)
        entries = sorted(tmp_path.glob("*.npy"))
        assert len(entries) == 4  # (node|edge) x (static|dynamic)
        second = execute(spec)
        assert [t.to_payload() for t in second.tables] == [
            t.to_payload() for t in first.tables
        ]
        assert sorted(tmp_path.glob("*.npy")) == entries  # pure hits


class TestCacheKeyAudit:
    """A cache hit across kernel stream class, block_rounds, or the
    graph-schedule hash must be impossible."""

    def _spec(self, snapshots12, values12, **kwargs):
        return EngineSpec("node", snapshots12[1], values12, 0.5, 1, **kwargs)

    def test_kernel_stream_classes_split(self, snapshots12, values12):
        tokens = {
            kernel: self._spec(snapshots12, values12, kernel=kernel).cache_token()
            for kernel in ("auto", "fused", "jit", "numpy")
        }
        assert tokens["auto"] == tokens["fused"] == tokens["jit"]
        assert tokens["numpy"] != tokens["fused"]

    def test_block_rounds_split_for_block_streams(self, snapshots12, values12):
        default = self._spec(snapshots12, values12).cache_token()
        explicit_default = self._spec(
            snapshots12, values12, block_rounds=256
        ).cache_token()
        small = self._spec(snapshots12, values12, block_rounds=64).cache_token()
        assert default == explicit_default  # None normalises to the default
        assert small != default
        # The per-round numpy stream has no block structure: its results
        # cannot depend on block_rounds, so its key ignores it.
        assert (
            self._spec(snapshots12, values12, kernel="numpy").cache_token()
            == self._spec(
                snapshots12, values12, kernel="numpy", block_rounds=64
            ).cache_token()
        )

    def test_schedule_hash_split(self, snapshots12, values12):
        static = self._spec(snapshots12, values12).cache_token()
        ordered = [snapshots12[1], snapshots12[0], snapshots12[2]]

        def dynamic(schedule):
            return EngineSpec.for_schedule(
                "node", schedule, values12, 0.5, k=1
            ).cache_token()

        cyclic = dynamic(CyclicSchedule(ordered, 7))
        assert cyclic != static
        assert cyclic == dynamic(CyclicSchedule(list(ordered), 7))
        assert cyclic != dynamic(CyclicSchedule(ordered, 8))
        assert cyclic != dynamic(RandomSchedule(ordered, 7, seed=0))
        assert dynamic(RandomSchedule(ordered, 7, seed=0)) != dynamic(
            RandomSchedule(ordered, 7, seed=1)
        )

    def test_disk_cache_separates_entries(
        self, tmp_path, snapshots12, values12
    ):
        cache = ResultCache(tmp_path)
        ordered = [snapshots12[1], snapshots12[0], snapshots12[2]]
        specs = [
            self._spec(snapshots12, values12),
            self._spec(snapshots12, values12, block_rounds=64),
            EngineSpec.for_schedule(
                "node", CyclicSchedule(ordered, 7), values12, 0.5, k=1
            ),
            EngineSpec.for_schedule(
                "node", RandomSchedule(ordered, 7, seed=0), values12, 0.5, k=1
            ),
        ]
        results = [
            sample_t_eps_batch(
                spec, 1e-4, 6, seed=3, max_steps=500_000, cache=cache
            )
            for spec in specs
        ]
        assert len(list(tmp_path.glob("*.npy"))) == len(specs)
        # And each spec reloads its own array, not a neighbour's.
        for spec, expected in zip(specs, results):
            np.testing.assert_array_equal(
                sample_t_eps_batch(
                    spec, 1e-4, 6, seed=3, max_steps=500_000, cache=cache
                ),
                expected,
            )
