"""Tests for the NodeModel (Definition 2.1)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.node_model import NodeModel
from repro.core.potentials import phi_pi
from repro.exceptions import ParameterError
from repro.graphs.spectral import stationary_distribution


class TestValidation:
    def test_alpha_range(self, triangle):
        with pytest.raises(ParameterError):
            NodeModel(triangle, [0.0, 0.0, 0.0], alpha=1.0)
        with pytest.raises(ParameterError):
            NodeModel(triangle, [0.0, 0.0, 0.0], alpha=-0.1)

    def test_alpha_zero_allowed_voter_case(self, triangle):
        process = NodeModel(triangle, [1.0, 2.0, 3.0], alpha=0.0, k=1, seed=0)
        process.step()  # no raise

    def test_k_must_be_positive_integer(self, triangle):
        with pytest.raises(ParameterError):
            NodeModel(triangle, [0.0] * 3, alpha=0.5, k=0)
        with pytest.raises(ParameterError):
            NodeModel(triangle, [0.0] * 3, alpha=0.5, k=1.5)

    def test_k_bounded_by_min_degree(self, star5):
        with pytest.raises(ParameterError, match="minimum degree"):
            NodeModel(star5, [0.0] * 6, alpha=0.5, k=2)

    def test_values_shape_checked(self, triangle):
        with pytest.raises(ParameterError):
            NodeModel(triangle, [0.0, 1.0], alpha=0.5)

    def test_disconnected_rejected(self):
        graph = nx.Graph([(0, 1), (2, 3)])
        from repro.exceptions import NotConnectedError

        with pytest.raises(NotConnectedError):
            NodeModel(graph, [0.0] * 4, alpha=0.5)


class TestSingleStep:
    def test_update_rule_k1(self, triangle):
        process = NodeModel(triangle, [6.0, 8.0, 9.0], alpha=0.5, k=1, seed=1)
        record = process.step()
        u, sample = record.node, record.sample
        expected = 0.5 * record.old_value + 0.5 * process._initial[sample[0]]
        assert record.new_value == pytest.approx(expected)
        assert process.values[u] == pytest.approx(expected)

    def test_only_selected_node_changes(self, petersen, rng):
        initial = rng.normal(size=10)
        process = NodeModel(petersen, initial, alpha=0.5, k=2, seed=3)
        record = process.step()
        unchanged = [i for i in range(10) if i != record.node]
        assert np.allclose(process.values[unchanged], initial[unchanged])

    def test_sample_without_replacement(self, petersen):
        process = NodeModel(petersen, np.zeros(10), alpha=0.5, k=3, seed=5)
        for _ in range(200):
            record = process.step()
            assert len(set(record.sample)) == len(record.sample) == 3

    def test_samples_are_neighbours(self, small_regular):
        process = NodeModel(small_regular, np.zeros(10), alpha=0.5, k=2, seed=5)
        for _ in range(200):
            record = process.step()
            for v in record.sample:
                assert small_regular.has_edge(record.node, v)

    def test_k_equals_degree_uses_full_neighbourhood(self, cycle6):
        process = NodeModel(cycle6, np.arange(6.0), alpha=0.5, k=2, seed=2)
        record = process.step()
        assert sorted(record.sample) == sorted(cycle6.neighbors(record.node))

    def test_step_counter(self, triangle):
        process = NodeModel(triangle, [1.0, 2.0, 3.0], alpha=0.5, seed=0)
        process.run(17)
        assert process.t == 17

    def test_voter_special_case_copies_neighbour(self, cycle6):
        process = NodeModel(cycle6, np.arange(6.0), alpha=0.0, k=1, seed=9)
        record = process.step()
        assert record.new_value == pytest.approx(
            float(process._initial[record.sample[0]])
        )


class TestInvariants:
    def test_values_stay_in_convex_hull(self, small_regular, rng):
        initial = rng.normal(size=10)
        process = NodeModel(small_regular, initial, alpha=0.3, k=2, seed=4)
        process.run(5_000)
        assert process.values.min() >= initial.min() - 1e-12
        assert process.values.max() <= initial.max() + 1e-12

    def test_discrepancy_non_increasing(self, small_regular, rng):
        initial = rng.normal(size=10)
        process = NodeModel(small_regular, initial, alpha=0.5, k=1, seed=4)
        last = process.discrepancy
        for _ in range(2_000):
            process.step()
            current = process.discrepancy
            assert current <= last + 1e-12
            last = current

    def test_phi_tracker_matches_direct_computation(self, star5, rng):
        initial = rng.normal(size=6)
        process = NodeModel(star5, initial, alpha=0.5, k=1, seed=4)
        pi = stationary_distribution(star5)
        process.run(3_000)
        assert process.phi == pytest.approx(phi_pi(pi, process.values), abs=1e-10)

    def test_fixed_point_constant_vector(self, petersen):
        process = NodeModel(petersen, np.full(10, 2.5), alpha=0.5, k=2, seed=1)
        process.run(1_000)
        assert np.allclose(process.values, 2.5)

    def test_convergence_to_common_value(self, small_regular, rng):
        initial = rng.normal(size=10)
        process = NodeModel(small_regular, initial, alpha=0.5, k=1, seed=4)
        process.run(100_000)
        assert process.discrepancy < 1e-6


class TestLaw:
    """Statistical checks of the one-step law (Definition 2.1)."""

    def test_expected_state_after_one_step(self, cycle6):
        # Empirical mean of xi(1) over many replicas matches
        # E[L] xi(0) = (I - (1-alpha)/n (I - P)) xi(0).
        from repro.theory.martingale import node_model_expected_update

        initial = np.arange(6.0)
        alpha = 0.4
        expected = node_model_expected_update(cycle6, alpha) @ initial
        total = np.zeros(6)
        replicas = 40_000
        process = NodeModel(cycle6, initial, alpha=alpha, k=1, seed=11)
        for _ in range(replicas):
            process.reset()
            process.step()
            total += process.values
        assert np.allclose(total / replicas, expected, atol=0.01)

    def test_uniform_node_selection(self, cycle6):
        process = NodeModel(cycle6, np.arange(6.0), alpha=0.5, k=1, seed=13)
        counts = np.zeros(6)
        for _ in range(30_000):
            record = process.step()
            counts[record.node] += 1
        assert np.allclose(counts / counts.sum(), 1 / 6, atol=0.01)

    def test_uniform_neighbour_selection(self, star5):
        # From a leaf, the only neighbour is the hub; from the hub, each
        # leaf should be picked ~uniformly.
        process = NodeModel(star5, np.zeros(6), alpha=0.5, k=1, seed=13)
        hub_counts = np.zeros(6)
        for _ in range(60_000):
            record = process.step()
            if record.node == 0:
                hub_counts[record.sample[0]] += 1
        total = hub_counts.sum()
        assert np.allclose(hub_counts[1:] / total, 1 / 5, atol=0.01)

    def test_fast_loop_same_law_as_step(self, small_regular, rng):
        # Empirical mean of xi after 100 steps: batched run vs step loop.
        initial = rng.normal(size=10)
        replicas = 3_000
        total_fast = np.zeros(10)
        total_slow = np.zeros(10)
        fast = NodeModel(small_regular, initial, alpha=0.5, k=2, seed=21)
        slow = NodeModel(small_regular, initial, alpha=0.5, k=2, seed=22)
        for _ in range(replicas):
            fast.reset()
            fast.run(100)  # batched path
            total_fast += fast.values
            slow.reset()
            for _ in range(100):
                slow.step()  # generic path
            total_slow += slow.values
        assert np.allclose(total_fast / replicas, total_slow / replicas, atol=0.05)


class TestLazyVariant:
    def test_lazy_halves_progress(self, cycle6, rng):
        initial = rng.normal(size=6)
        eager = NodeModel(cycle6, initial, alpha=0.5, k=1, seed=3)
        lazy = NodeModel(cycle6, initial, alpha=0.5, k=1, seed=3, lazy=True)
        eager.run(20_000)
        lazy.run(20_000)
        # Both converge; lazy is slower but must still have shrunk phi a lot.
        assert eager.phi < 1e-8
        assert lazy.phi < 1e-4

    def test_lazy_noop_rate(self, triangle):
        process = NodeModel(
            triangle, [1.0, 2.0, 3.0], alpha=0.5, seed=5, lazy=True,
            record_schedule=True,
        )
        for _ in range(10_000):
            process.step()
        noops = sum(1 for s in process.schedule if s.is_noop)
        assert 0.45 < noops / 10_000 < 0.55


class TestScheduleRecording:
    def test_schedule_records_every_step(self, petersen):
        process = NodeModel(
            petersen, np.arange(10.0), alpha=0.5, k=2, seed=6, record_schedule=True
        )
        process.run(50)
        assert len(process.schedule) == 50
        process.schedule.validate(process.adjacency, k=2)

    def test_replay_reproduces_values(self, petersen, rng):
        initial = rng.normal(size=10)
        recorder = NodeModel(
            petersen, initial, alpha=0.5, k=2, seed=6, record_schedule=True
        )
        recorder.run(200)
        replayer = NodeModel(petersen, initial, alpha=0.5, k=2, seed=999)
        replayer.replay(recorder.schedule)
        assert np.allclose(replayer.values, recorder.values)

    def test_reset_clears_schedule(self, triangle):
        process = NodeModel(
            triangle, [1.0, 2.0, 3.0], alpha=0.5, seed=6, record_schedule=True
        )
        process.run(5)
        process.reset()
        assert len(process.schedule) == 0
        assert process.t == 0
        assert np.allclose(process.values, [1.0, 2.0, 3.0])
