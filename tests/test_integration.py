"""Cross-module integration tests: end-to-end paper claims at small scale."""

import networkx as nx
import numpy as np
import pytest

from repro.core.convergence import measure_t_eps, run_to_consensus
from repro.core.initial import center_simple, rademacher_values
from repro.core.edge_model import EdgeModel
from repro.core.node_model import NodeModel
from repro.dual.duality import run_coupled, verify_duality
from repro.graphs.spectral import (
    second_laplacian_eigenpair,
    second_walk_eigenpair,
    stationary_distribution,
)
from repro.sim.montecarlo import estimate_moments, sample_f_values
from repro.theory.convergence import (
    edge_model_upper_bound,
    node_model_upper_bound,
)
from repro.theory.variance import variance_bounds


class TestExpectationOfF:
    def test_node_model_f_expectation_degree_weighted(self):
        """Lemma 4.1's consequence: E[F] = sum_u pi_u xi_u(0) on an
        irregular graph (star)."""
        graph = nx.star_graph(5)
        initial = np.array([6.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        pi = stationary_distribution(graph)
        expected = float(np.sum(pi * initial))  # = 3.0: hub has half the mass

        def make(rng):
            return NodeModel(graph, initial, alpha=0.5, k=1, seed=rng)

        sample = sample_f_values(make, 300, seed=1, discrepancy_tol=1e-7)
        estimate = estimate_moments(sample, seed=1)
        lo, hi = estimate.mean_ci
        assert lo <= expected <= hi

    def test_edge_model_f_expectation_simple_average(self):
        """Theorem 2.4's remark: E[F] = Avg(0) even on irregular graphs."""
        graph = nx.star_graph(5)
        initial = np.array([6.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        expected = 1.0  # simple average

        def make(rng):
            return EdgeModel(graph, initial, alpha=0.5, seed=rng)

        sample = sample_f_values(make, 300, seed=2, discrepancy_tol=1e-7)
        estimate = estimate_moments(sample, seed=2)
        lo, hi = estimate.mean_ci
        assert lo <= expected <= hi

    def test_two_models_differ_on_irregular_graphs(self):
        """The hub-weighted vs uniform expectations are distinguishable."""
        graph = nx.star_graph(5)
        initial = np.array([6.0, 0.0, 0.0, 0.0, 0.0, 0.0])

        def make_node(rng):
            return NodeModel(graph, initial, alpha=0.5, k=1, seed=rng)

        def make_edge(rng):
            return EdgeModel(graph, initial, alpha=0.5, seed=rng)

        node_mean = float(
            sample_f_values(make_node, 300, seed=3, discrepancy_tol=1e-7).mean()
        )
        edge_mean = float(
            sample_f_values(make_edge, 300, seed=4, discrepancy_tol=1e-7).mean()
        )
        assert node_mean > 2.0  # near 3
        assert edge_mean < 2.0  # near 1


class TestConvergenceTimeShapes:
    def test_node_bound_dominates_measured_time(self):
        """Measured T_eps stays below the Theorem 2.2(1) expression (the
        hidden constant is ~1 in practice, so constant 1 suffices here)."""
        epsilon = 1e-6
        for graph in (nx.cycle_graph(24), nx.complete_graph(24)):
            initial = center_simple(np.arange(24.0))
            lambda2, _ = second_walk_eigenpair(graph)
            bound = node_model_upper_bound(
                24, lambda2, float(np.sum(initial**2)), epsilon
            )
            times = []
            for s in range(3):
                process = NodeModel(graph, initial, alpha=0.5, k=1, seed=s)
                times.append(measure_t_eps(process, epsilon, 100_000_000))
            assert np.mean(times) <= bound

    def test_edge_bound_dominates_measured_time(self):
        epsilon = 1e-6
        graph = nx.barbell_graph(8, 0)
        n = graph.number_of_nodes()
        m = graph.number_of_edges()
        initial = center_simple(np.arange(float(n)))
        lambda2_l, _ = second_laplacian_eigenpair(graph)
        bound = edge_model_upper_bound(
            n, m, lambda2_l, float(np.sum(initial**2)), epsilon
        )
        times = []
        for s in range(3):
            process = EdgeModel(graph, initial, alpha=0.5, seed=s)
            times.append(measure_t_eps(process, epsilon, 200_000_000))
        # Theorem 2.4(1) is O(.); the hidden constant on the barbell
        # (where xi(0) projects mostly on the bottleneck mode) is ~1.5.
        assert np.mean(times) <= 4.0 * bound

    def test_cycle_slower_than_clique(self):
        """The spectral gap drives the ordering the paper implies."""
        epsilon = 1e-6
        initial = center_simple(np.arange(20.0))
        cycle_times, clique_times = [], []
        for s in range(3):
            cycle = NodeModel(nx.cycle_graph(20), initial, alpha=0.5, seed=s)
            cycle_times.append(measure_t_eps(cycle, epsilon, 100_000_000))
            clique = NodeModel(nx.complete_graph(20), initial, alpha=0.5, seed=s)
            clique_times.append(measure_t_eps(clique, epsilon, 100_000_000))
        assert np.mean(cycle_times) > 2 * np.mean(clique_times)


class TestVarianceEndToEnd:
    def test_cycle_and_clique_variances_close(self):
        """Theorem 2.2(2): same Var(F) (asymptotically) on the clique and
        the cycle for the same initial values — checked at n = 24 with
        generous Monte-Carlo tolerance."""
        n = 24
        initial = center_simple(rademacher_values(n, seed=5))
        variances = {}
        for name, graph in (("cycle", nx.cycle_graph(n)),
                            ("clique", nx.complete_graph(n))):

            def make(rng, graph=graph):
                return NodeModel(graph, initial, alpha=0.5, k=1, seed=rng)

            sample = sample_f_values(make, 250, seed=6, discrepancy_tol=1e-7)
            variances[name] = float(np.var(sample, ddof=1))
        ratio = variances["cycle"] / variances["clique"]
        assert 0.5 < ratio < 2.0

    def test_variance_within_prop58_interval(self):
        n = 16
        graph = nx.random_regular_graph(4, n, seed=8)
        initial = center_simple(rademacher_values(n, seed=9))
        bounds = variance_bounds(graph, initial, alpha=0.5, k=2)

        def make(rng):
            return NodeModel(graph, initial, alpha=0.5, k=2, seed=rng)

        sample = sample_f_values(make, 300, seed=10, discrepancy_tol=1e-7)
        estimate = estimate_moments(sample, confidence=0.99, seed=10)
        lo, hi = estimate.variance_ci
        assert hi >= bounds.lower and lo <= bounds.upper


class TestDualityAtScale:
    @pytest.mark.parametrize("steps", [0, 1, 500])
    def test_duality_various_lengths(self, steps):
        graph = nx.random_regular_graph(4, 20, seed=11)
        rng = np.random.default_rng(11)
        initial = rng.normal(size=20)
        trace = run_coupled(graph, initial, alpha=0.5, k=2, steps=steps, seed=12)
        assert verify_duality(trace, atol=1e-9)

    def test_duality_with_lazy_schedule(self):
        """No-op (lazy) steps are identity in both processes, so the
        duality must survive them."""
        graph = nx.cycle_graph(8)
        rng = np.random.default_rng(13)
        initial = rng.normal(size=8)
        process = NodeModel(
            graph, initial, alpha=0.5, k=1, seed=14, lazy=True,
            record_schedule=True,
        )
        process.run(100)
        from repro.dual.diffusion import DiffusionProcess

        diffusion = DiffusionProcess(graph, cost=initial, alpha=0.5, k=1)
        diffusion.replay(process.schedule.reversed())
        assert np.allclose(diffusion.costs, process.values, atol=1e-10)


class TestConsensusValueConsistency:
    def test_f_from_trace_equals_consensus_result(self):
        """run_to_consensus's value agrees with simply running far longer."""
        graph = nx.random_regular_graph(4, 12, seed=15)
        rng = np.random.default_rng(15)
        initial = rng.normal(size=12)
        process = NodeModel(graph, initial, alpha=0.5, k=1, seed=16)
        result = run_to_consensus(process, discrepancy_tol=1e-10)
        process.run(50_000)
        assert float(process.values.mean()) == pytest.approx(result.value, abs=1e-9)
