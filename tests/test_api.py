"""Tests for the declarative run API (repro.api)."""

import json

import pytest

from repro.api import (
    ArtifactStore,
    ParamSpec,
    Provenance,
    RunResult,
    RunSpec,
    diff_results,
    execute,
    expand_grid,
    experiment_ids,
    get_experiment,
    resolve_spec,
)
from repro.exceptions import ArtifactError, SpecError
from repro.io import ResultBundle
from repro.sim.results import ResultTable


class TestRunSpec:
    def test_json_roundtrip_lossless(self):
        spec = RunSpec(
            "EXP-T222",
            preset="full",
            seed=7,
            engine="loop",
            overrides={"n": 24, "tol": 1e-5},
            markdown=True,
        )
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_roundtrip_normalises_tuples(self):
        spec = RunSpec("EXP-T221", overrides={"sizes": (16, 32)})
        assert spec.overrides["sizes"] == [16, 32]
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_unknown_payload_field_rejected(self):
        with pytest.raises(SpecError, match="unknown fields"):
            RunSpec.from_payload({"experiment_id": "EXP-F1", "bogus": 1})

    def test_missing_experiment_id_rejected(self):
        with pytest.raises(SpecError):
            RunSpec.from_payload({"preset": "fast"})

    def test_bad_seed_rejected(self):
        with pytest.raises(SpecError):
            RunSpec("EXP-F1", seed="zero")

    def test_key_stable_and_override_sensitive(self):
        base = RunSpec("EXP-T222")
        assert base.key() == "EXP-T222.fast.s0"
        varied = RunSpec("EXP-T222", overrides={"n": 24})
        assert varied.key() != base.key()
        assert varied.key() == RunSpec("EXP-T222", overrides={"n": 24}).key()

    def test_key_treats_engine_as_override(self):
        via_field = RunSpec("EXP-T222", engine="loop")
        via_override = RunSpec("EXP-T222", overrides={"engine": "loop"})
        assert via_field.key() == via_override.key()

    def test_key_ignores_engine_that_cannot_affect_resolution(self):
        # EXP-VT declares no engine parameter: the field is a no-op and
        # must not split the configuration's identity.
        assert RunSpec("EXP-VT", engine="batch").key() == RunSpec("EXP-VT").key()
        assert RunSpec("EXP-VT", engine="loop").key() == RunSpec("EXP-VT").key()
        # The declared default is equally a no-op.
        assert (
            RunSpec("EXP-T222", engine="batch").key()
            == RunSpec("EXP-T222").key()
        )

    def test_key_keeps_engine_for_unknown_experiment(self):
        base = RunSpec("EXP-FUTURE")
        assert RunSpec("EXP-FUTURE", engine="loop").key() != base.key()

    def test_key_ignores_override_equal_to_preset_value(self):
        # n=36 IS the fast preset's value: resolution is identical, so
        # the configuration identity must be too.
        assert (
            RunSpec("EXP-T222", overrides={"n": 36}).key()
            == RunSpec("EXP-T222").key()
        )
        assert (
            RunSpec("EXP-T222", overrides={"engine": "batch"}).key()
            == RunSpec("EXP-T222").key()
        )

    def test_key_identical_for_string_and_typed_overrides(self):
        assert (
            RunSpec("EXP-T222", overrides={"n": "48"}).key()
            == RunSpec("EXP-T222", overrides={"n": 48}).key()
        )

    def test_malformed_provenance_value_reported_cleanly(self):
        payload = {
            "parameters": {},
            "version": "1.0.0",
            "graph_hashes": [],
            "wall_time_s": "not-a-number",
            "timestamp": 0.0,
        }
        with pytest.raises(SpecError, match="malformed provenance"):
            Provenance.from_payload(payload)


class TestRegistry:
    def test_all_ids_registered(self):
        assert set(experiment_ids()) == {
            "EXP-F1", "EXP-F4", "EXP-T221", "EXP-T221K", "EXP-T221LB",
            "EXP-T222", "EXP-T241", "EXP-T242", "EXP-L41", "EXP-L57",
            "EXP-PB1", "EXP-CE2", "EXP-PRICE", "EXP-MOM", "EXP-IRR",
            "EXP-ABL", "EXP-VT", "EXP-DYN", "EXP-DYNM", "EXP-COAL",
        }

    def test_unknown_id_lists_known(self):
        with pytest.raises(SpecError, match="EXP-F1"):
            get_experiment("EXP-NOPE")

    def test_preset_resolution(self):
        exp = get_experiment("EXP-T222")
        fast = exp.resolve("fast")
        full = exp.resolve("full")
        assert fast == {
            "n": 36,
            "replicas": 160,
            "tol": 1e-6,
            "engine": "batch",
            "kernel": "auto",
            "threads": None,
        }
        assert full["n"] == 100 and full["replicas"] == 600

    def test_overrides_win_over_preset(self):
        exp = get_experiment("EXP-T222")
        assert exp.resolve("fast", {"n": 99})["n"] == 99

    def test_unknown_preset_rejected(self):
        with pytest.raises(SpecError, match="preset"):
            get_experiment("EXP-T222").resolve("huge")

    def test_unknown_override_rejected(self):
        with pytest.raises(SpecError, match="declared parameters"):
            get_experiment("EXP-T222").resolve("fast", {"bogus": 1})

    def test_string_coercion(self):
        exp = get_experiment("EXP-T222")
        resolved = exp.resolve("fast", {"n": "48", "tol": "1e-7"})
        assert resolved["n"] == 48 and resolved["tol"] == 1e-7

    def test_choice_validation(self):
        with pytest.raises(SpecError, match="engine"):
            get_experiment("EXP-T222").resolve("fast", {"engine": "gpu"})

    def test_sequence_coercion(self):
        exp = get_experiment("EXP-T221")
        resolved = exp.resolve("fast", {"sizes": "8,16"})
        assert resolved["sizes"] == [8, 16]


class TestParamSpec:
    def test_bool_coercion(self):
        spec = ParamSpec(bool, "flag")
        assert spec.coerce("x", "true") is True
        assert spec.coerce("x", "0") is False
        with pytest.raises(SpecError):
            spec.coerce("x", "maybe")

    def test_int_rejects_bool_and_garbage(self):
        spec = ParamSpec(int, "count")
        with pytest.raises(SpecError):
            spec.coerce("x", True)
        with pytest.raises(SpecError):
            spec.coerce("x", "1.5")

    def test_float_accepts_int(self):
        assert ParamSpec(float, "tol").coerce("x", 1) == 1.0


class TestExecute:
    def test_engine_field_ignored_without_engine_param(self):
        # EXP-VT declares no engine; the spec-level field is a no-op,
        # matching the legacy CLI's --engine behaviour.
        assert "engine" not in resolve_spec(RunSpec("EXP-VT", engine="loop"))

    def test_engine_field_applies_when_declared(self):
        assert resolve_spec(RunSpec("EXP-T222", engine="loop"))["engine"] == "loop"

    def test_explicit_override_beats_engine_field(self):
        spec = RunSpec("EXP-T222", engine="loop", overrides={"engine": "batch"})
        assert resolve_spec(spec)["engine"] == "batch"

    def test_provenance_recorded(self):
        import repro

        result = execute(RunSpec("EXP-F1", overrides={"steps": 5}, seed=3))
        assert result.provenance.version == repro.__version__
        assert result.provenance.parameters["steps"] == 5
        assert result.provenance.parameters["engine"] == "batch"
        assert result.provenance.wall_time_s > 0
        assert result.provenance.graph_hashes  # graphs were frozen
        assert all(len(h) == 64 for h in result.provenance.graph_hashes)

    def test_result_json_roundtrip(self):
        result = execute(RunSpec("EXP-F4"))
        rebuilt = RunResult.from_json(result.to_json())
        assert rebuilt.spec == result.spec
        assert rebuilt.tables == result.tables
        assert rebuilt.provenance == result.provenance

    def test_deterministic_at_fixed_seed(self):
        spec = RunSpec("EXP-F1", overrides={"steps": 5}, seed=1)
        first, second = execute(spec), execute(spec)
        assert [t.to_payload() for t in first.tables] == [
            t.to_payload() for t in second.tables
        ]


class TestExpandGrid:
    def test_grid_order_and_coercion(self):
        specs = expand_grid("EXP-T222", {"n": ["24", "36"], "tol": ["1e-5"]})
        assert [s.overrides for s in specs] == [
            {"n": 24, "tol": 1e-5},
            {"n": 36, "tol": 1e-5},
        ]

    def test_undeclared_axis_rejected(self):
        with pytest.raises(SpecError):
            expand_grid("EXP-T222", {"bogus": [1, 2]})

    def test_axis_collision_with_override_rejected(self):
        with pytest.raises(SpecError, match="collides"):
            expand_grid("EXP-T222", {"n": [24]}, overrides={"n": 36})

    def test_empty_axes_rejected(self):
        with pytest.raises(SpecError):
            expand_grid("EXP-T222", {})


def _result(experiment_id="EXP-F4", seed=0, value=2.5, preset="fast"):
    table = ResultTable("demo", ["x", "y"])
    table.add_row(1, value)
    return RunResult(
        spec=RunSpec(experiment_id, preset=preset, seed=seed),
        tables=[table],
        provenance=Provenance(
            parameters={},
            engine=None,
            version="1.0.0",
            graph_hashes=[],
            wall_time_s=0.1,
            timestamp=float(seed),
        ),
    )


class TestArtifactStore:
    def test_save_creates_manifest_and_artefact(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.save(_result())
        assert path.name == "EXP-F4.fast.s0.json"
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["schema"] == 1
        assert "EXP-F4.fast.s0" in manifest["records"]
        record = manifest["records"]["EXP-F4.fast.s0"]
        assert record["experiment_id"] == "EXP-F4"
        assert record["file"] == "EXP-F4.fast.s0.json"
        assert record["version"] == "1.0.0"

    def test_same_configuration_overwrites(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(_result(value=1.0))
        store.save(_result(value=2.0))
        assert len(store.records()) == 1
        assert store.load("EXP-F4.fast.s0").tables[0].rows == [[1, 2.0]]

    def test_load_spec_and_find(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(_result(seed=0))
        store.save(_result(seed=1))
        store.save(_result(experiment_id="EXP-F1", seed=0))
        assert len(store.records()) == 3
        assert len(store.find(experiment_id="EXP-F4")) == 2
        assert len(store.find(experiment_id="EXP-F4", seed=1)) == 1
        loaded = store.load_spec(RunSpec("EXP-F4", seed=1))
        assert loaded.spec.seed == 1

    def test_latest_picks_newest_timestamp(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(_result(seed=0))   # timestamp 0.0
        store.save(_result(seed=5))   # timestamp 5.0
        assert store.latest("EXP-F4").spec.seed == 5

    def test_missing_key_lists_known(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(_result())
        with pytest.raises(ArtifactError, match="EXP-F4.fast.s0"):
            store.load("EXP-NOPE.fast.s0")

    def test_latest_without_runs_errors(self, tmp_path):
        with pytest.raises(ArtifactError):
            ArtifactStore(tmp_path).latest("EXP-F4")

    def test_corrupt_manifest_rebuilt_from_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(_result())
        (tmp_path / "manifest.json").write_text("{not json")
        records = store.records()
        assert [record.key for record in records] == ["EXP-F4.fast.s0"]
        assert store.load("EXP-F4.fast.s0").spec.experiment_id == "EXP-F4"
        # fsck's read-only mode still reports the corruption verbatim.
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(ArtifactError, match="corrupt manifest"):
            store._read_manifest(heal=False)

    def test_import_bundle_absorbs_legacy_archive(self, tmp_path):
        table = ResultTable("legacy", ["x"])
        table.add_row(1)
        bundle = ResultBundle(
            experiment_id="EXP-F4", seed=2, fast=False, tables=[table]
        )
        store = ArtifactStore(tmp_path)
        store.import_bundle(bundle)
        loaded = store.load_spec(RunSpec("EXP-F4", preset="full", seed=2))
        assert loaded.tables[0].title == "legacy"
        assert loaded.provenance.version == "unknown"


class TestDiffResults:
    def test_identical_runs_match(self):
        assert diff_results(_result(), _result()) == []

    def test_numeric_drift_detected(self):
        problems = diff_results(_result(value=1.0), _result(value=100.0))
        assert problems and "demo" in problems[0]

    def test_within_tolerance_matches(self):
        assert diff_results(_result(value=1.0), _result(value=1.1)) == []

    def test_different_experiments_flagged(self):
        problems = diff_results(_result("EXP-F4"), _result("EXP-F1"))
        assert problems == ["experiment changed: EXP-F4 -> EXP-F1"]

    def test_table_set_changes_flagged(self):
        extra = _result()
        second = ResultTable("extra", ["z"])
        second.add_row(0)
        extra.tables.append(second)
        problems = diff_results(_result(), extra)
        assert any("appeared" in p for p in problems)
        problems = diff_results(extra, _result())
        assert any("disappeared" in p for p in problems)


class TestExecuteMany:
    def test_identical_specs_invoke_engine_once(self, monkeypatch):
        from repro.api import execute_many
        from repro.obs.metrics import METRICS

        experiment = get_experiment("EXP-F4")
        calls = []
        real_fn = experiment.fn

        def counting_fn(*args, **kwargs):
            calls.append(1)
            return real_fn(*args, **kwargs)

        monkeypatch.setattr(experiment, "fn", counting_fn)
        base = METRICS.value("api.memo_hits")
        specs = [RunSpec("EXP-F4", seed=1) for _ in range(6)]
        results = execute_many(specs)
        assert len(calls) == 1  # six identical specs, one engine run
        assert len(results) == 6
        assert METRICS.value("api.memo_hits") - base == 5
        first = results[0]
        for result in results[1:]:
            assert result.provenance is first.provenance
            assert [t.to_payload() for t in result.tables] == [
                t.to_payload() for t in first.tables
            ]

    def test_distinct_specs_each_execute(self, monkeypatch):
        from repro.api import execute_many

        experiment = get_experiment("EXP-F4")
        calls = []
        real_fn = experiment.fn

        def counting_fn(*args, **kwargs):
            calls.append(1)
            return real_fn(*args, **kwargs)

        monkeypatch.setattr(experiment, "fn", counting_fn)
        results = execute_many([RunSpec("EXP-F4", seed=1),
                                RunSpec("EXP-F4", seed=2)])
        assert len(calls) == 2
        assert results[0].spec.seed == 1 and results[1].spec.seed == 2

    def test_memo_false_forces_every_run(self, monkeypatch):
        from repro.api import execute_many

        experiment = get_experiment("EXP-F4")
        calls = []
        real_fn = experiment.fn

        def counting_fn(*args, **kwargs):
            calls.append(1)
            return real_fn(*args, **kwargs)

        monkeypatch.setattr(experiment, "fn", counting_fn)
        execute_many([RunSpec("EXP-F4"), RunSpec("EXP-F4")], memo=False)
        assert len(calls) == 2

    def test_memo_hit_keeps_each_specs_output_options(self):
        from repro.api import execute_many

        plain = RunSpec("EXP-F4", seed=3)
        marked = RunSpec("EXP-F4", seed=3, markdown=True)
        results = execute_many([plain, marked])
        assert results[0].spec is plain
        assert results[1].spec is marked  # memo hit, own spec preserved
