"""Tests for repro.faults and the crash-consistency it enforces.

Layered bottom-up: fault plans and the injector seams, the disabled
fast path's overhead contract, crash-consistent behaviour of each
persistent layer (FileLock stale-breaking, the engine cache, the
artefact store, queue recovery, the worker's deadline watchdog and
ENOSPC handling, fsck) — and finally the chaos suite: a seeded matrix
of 100+ single-fault plans, each crashing / tearing / corrupting /
filling-the-disk at one injection point of a full submit-run-fetch
pipeline, after which recovery plus resubmission must converge to the
exact fault-free results with a clean fsck and no lost, stuck or
over-executed jobs.
"""

from __future__ import annotations

import json
import os
import sys
import textwrap
import threading
import time

import numpy as np
import pytest

from repro.api import RunSpec, execute
from repro.api.registry import REGISTRY
from repro.api.store import ArtifactStore
from repro.engine.cache import ResultCache
from repro.exceptions import (
    ArtifactError,
    JobError,
    SpecError,
    StorageError,
)
from repro.faults import (
    ALL_KINDS,
    CRASH_KINDS,
    FILTER_KINDS,
    FaultPlan,
    FaultRule,
    InjectedCrash,
    active,
    crash_plans,
    injected,
    install,
    observe,
    seeded_plans,
    uninstall,
)
from repro.faults import injector
from repro.jobs import (
    CLAIMED,
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
    RUNNING,
    Job,
    JobQueue,
    Orchestrator,
    Worker,
    fsck,
    queue_findings,
)
from repro.jobs.queue import CORRUPT_DIR
from repro.locks import FileLock, LockTimeout, atomic_write_text, read_text
from repro.obs.metrics import METRICS

FAULT_EXPERIMENT_ID = "TEST-FLT"
_TEST_MODULE = "repro_faults_testexp"
_TEST_MODULE_SOURCE = textwrap.dedent(
    '''
    """Fault-suite probe experiment (written by tests/test_faults.py)."""
    import os
    import time

    from repro.api.registry import ParamSpec, experiment
    from repro.sim.results import ResultTable


    @experiment(
        "TEST-FLT",
        artefact="fault-injection end-to-end probe",
        params={
            "touch_file": ParamSpec(
                str, "append one line per engine invocation", default=""
            ),
            "block_file": ParamSpec(
                str, "spin while this file exists", default=""
            ),
            "value": ParamSpec(int, "payload column", default=1),
        },
    )
    def run_probe(seed=0, touch_file="", block_file="", value=1):
        if touch_file:
            with open(touch_file, "a") as handle:
                handle.write(f"{os.getpid()}\\n")
        while block_file and os.path.exists(block_file):
            time.sleep(0.02)
        table = ResultTable("probe", ["seed", "value"])
        table.add_row(seed, value)
        return [table]
    '''
)


@pytest.fixture(scope="module")
def probe_module(tmp_path_factory):
    """The probe experiment, importable here AND by worker subprocesses."""
    directory = tmp_path_factory.mktemp("faults_mod")
    (directory / f"{_TEST_MODULE}.py").write_text(_TEST_MODULE_SOURCE)
    sys.path.insert(0, str(directory))
    extra = os.environ.get("PYTHONPATH", "")
    os.environ["PYTHONPATH"] = (
        f"{extra}{os.pathsep}{directory}" if extra else str(directory)
    )
    __import__(_TEST_MODULE)
    yield _TEST_MODULE
    sys.path.remove(str(directory))
    os.environ["PYTHONPATH"] = extra
    sys.modules.pop(_TEST_MODULE, None)
    REGISTRY.pop(FAULT_EXPERIMENT_ID, None)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """A test that dies mid-injection must not poison its successors."""
    yield
    uninstall()


def _drain(root, jobs=None):
    """Process everything queued with an in-process worker.

    The long heartbeat interval keeps the daemon thread from beating
    during the (sub-second) drain, so fault-plan op counts stay
    deterministic across runs.
    """
    return Worker(str(root), poll=0.002, heartbeat_interval=30.0).run(
        max_jobs=jobs, idle_exit=0.02
    )


# ----------------------------------------------------------------------
# Fault plans: rules, serialisation, firing semantics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule("site", 1, "meteor_strike")

    def test_kind_universe(self):
        assert CRASH_KINDS == {"crash_before", "crash_after", "torn"}
        assert FILTER_KINDS == {"stale_clock", "pid_reuse"}
        assert ALL_KINDS == CRASH_KINDS | FILTER_KINDS | {
            "enospc", "corrupt"
        }

    def test_serialisation_round_trip(self):
        plan = FaultPlan(
            rules=[
                FaultRule("queue.claim", 2, "crash_after"),
                FaultRule("store.artifact", 1, "torn", arg=0.25),
            ],
            seed=42,
            name="twofer",
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.rules == plan.rules
        assert clone.seed == 42
        assert clone.name == "twofer"

    def test_malformed_payload_raises(self):
        with pytest.raises(ValueError, match="malformed fault plan"):
            FaultPlan.from_payload({"rules": [{"nonsense": True}]})

    def test_injected_crash_is_not_an_exception(self):
        # Production `except Exception` clauses must NOT swallow a
        # simulated death — that is the whole point of the simulation.
        assert issubclass(InjectedCrash, BaseException)
        assert not issubclass(InjectedCrash, Exception)

    def test_crash_kills_every_later_seam_call(self):
        plan = FaultPlan([FaultRule("write", 1, "crash_before")])
        with pytest.raises(InjectedCrash):
            plan.begin_write("write", "p", "data")
            plan.at_replace("write", "p", op_start=False)
        assert plan.crashed
        # A dead process performs no further IO, on any site.
        with pytest.raises(InjectedCrash):
            plan.on_read("other_site", "p", "data")

    def test_torn_write_truncates_then_crashes(self):
        plan = FaultPlan([FaultRule("w", 1, "torn", arg=0.4)])
        data = plan.begin_write("w", "p", "0123456789")
        assert data == "0123"
        plan.at_replace("w", "p", op_start=False)
        with pytest.raises(InjectedCrash):
            plan.at_published("w", "p")

    def test_enospc_raises_oserror(self):
        import errno

        plan = FaultPlan([FaultRule("w", 1, "enospc")])
        with pytest.raises(OSError) as info:
            plan.begin_write("w", "p", "data")
        assert info.value.errno == errno.ENOSPC
        assert not plan.crashed  # disk-full is an error, not a death

    def test_corrupt_read_is_deterministic(self):
        plan_a = FaultPlan([FaultRule("r", 1, "corrupt")])
        plan_b = FaultPlan([FaultRule("r", 1, "corrupt")])
        text = json.dumps({"k": list(range(20))})
        mangled_a = plan_a.on_read("r", "p", text)
        mangled_b = plan_b.on_read("r", "p", text)
        assert mangled_a == mangled_b
        assert mangled_a != text
        with pytest.raises(json.JSONDecodeError):
            json.loads(mangled_a)

    def test_filters_apply_to_every_op(self):
        plan = FaultPlan([
            FaultRule("queue.heartbeat", 1, "stale_clock", arg=100.0),
            FaultRule("queue.heartbeat", 1, "pid_reuse", arg=4242.0),
        ])
        now = time.time()
        for _ in range(3):  # not one-shot
            assert plan.heartbeat_time("queue.heartbeat", now) == now - 100.0
            assert plan.heartbeat_pid("queue.heartbeat", 1) == 4242
        assert plan.heartbeat_time("other", now) == now  # site-scoped

    def test_observation_counts_ops_per_site(self):
        plan = FaultPlan()
        for _ in range(3):
            plan.begin_write("a", "p", "x")
            plan.at_published("a", "p")
        plan.on_read("b", "p", "x")
        assert plan.observed == {"a": 3, "b": 1}
        assert plan.injected == []

    def test_fired_faults_are_logged_and_counted(self):
        before = METRICS.value("faults.injected")
        plan = FaultPlan([FaultRule("w", 1, "enospc")])
        with pytest.raises(OSError):
            plan.begin_write("w", "p", "data")
        assert plan.injected == [
            {"site": "w", "op": 1, "kind": "enospc", "phase": "write"}
        ]
        assert METRICS.value("faults.injected") == before + 1


class TestInjector:
    def test_no_plan_is_passthrough(self):
        assert active() is None
        assert injector.on_write("s", "p", "data") == "data"
        assert injector.on_read("s", "p", "data") == "data"
        injector.on_replace("s", "p")
        injector.on_published("s", "p")
        assert injector.heartbeat_time("s", 7.0) == 7.0
        assert injector.heartbeat_pid("s", 9) == 9

    def test_injected_context_installs_and_uninstalls(self):
        plan = FaultPlan()
        with injected(plan) as installed:
            assert installed is plan
            assert active() is plan
        assert active() is None

    def test_install_uninstall(self):
        plan = FaultPlan()
        install(plan)
        assert active() is plan
        uninstall()
        assert active() is None

    def test_crash_before_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "x.json"
        atomic_write_text(target, "old")
        plan = FaultPlan([FaultRule("write", 1, "crash_before")])
        with injected(plan):
            with pytest.raises(InjectedCrash):
                atomic_write_text(target, "new")
        assert target.read_text() == "old"
        assert list(tmp_path.glob(".*.tmp"))  # the orphaned temp file

    def test_crash_after_publishes_first(self, tmp_path):
        target = tmp_path / "x.json"
        atomic_write_text(target, "old")
        plan = FaultPlan([FaultRule("write", 1, "crash_after")])
        with injected(plan):
            with pytest.raises(InjectedCrash):
                atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_torn_write_is_visible_as_truncation(self, tmp_path):
        target = tmp_path / "x.json"
        plan = FaultPlan([FaultRule("write", 1, "torn", arg=0.5)])
        with injected(plan):
            with pytest.raises(InjectedCrash):
                atomic_write_text(target, "0123456789")
        assert target.read_text() == "01234"

    def test_read_seam_corrupts(self, tmp_path):
        target = tmp_path / "x.json"
        target.write_text('{"fine": true}')
        plan = FaultPlan([FaultRule("read", 1, "corrupt")])
        with injected(plan):
            mangled = read_text(target)
        assert mangled != '{"fine": true}'
        assert target.read_text() == '{"fine": true}'  # disk untouched

    def test_dying_while_holding_a_lock_leaves_it(self, tmp_path):
        path = tmp_path / "x.lock"
        plan = FaultPlan([FaultRule("lock", 1, "crash_after")])
        with injected(plan):
            with pytest.raises(InjectedCrash):
                with FileLock(path):
                    pass  # pragma: no cover - crash fires in acquire
            assert path.exists()  # the dead holder released nothing
        # With the plan gone a waiter can break it once it goes stale.
        FileLock(path, stale_after=0.0)._break_if_stale()
        assert not path.exists()


# ----------------------------------------------------------------------
# Overhead: the uninstalled seams are invisible on a persistence op
# ----------------------------------------------------------------------
def test_disabled_seam_overhead_under_two_percent(tmp_path):
    """The off state must cost < 2% of one guarded persistence op.

    A write-op consults the seams at most four times (write / replace /
    published on the way out, read on the way back); their measured
    unit cost must vanish against the atomic write of a realistic job
    record — the cheapest thing the seams guard.
    """
    target = tmp_path / "record.json"
    record = Job(spec=RunSpec("EXP-X", seed=3, overrides={"a": 1})).to_json()
    atomic_write_text(target, record)  # warm
    writes = 300
    started = time.perf_counter()
    for _ in range(writes):
        atomic_write_text(target, record)
    per_write = (time.perf_counter() - started) / writes

    calls = 20_000
    started = time.perf_counter()
    for _ in range(calls):
        injector.on_write("site", target, record)
        injector.on_replace("site", target)
        injector.on_published("site", target)
        injector.on_read("site", target, record)
    per_quartet = (time.perf_counter() - started) / calls

    overhead = per_quartet / per_write
    assert overhead < 0.02, (
        f"disabled-seam overhead {overhead:.2%} of an atomic write "
        f"(quartet {per_quartet * 1e9:.0f}ns, write {per_write * 1e6:.0f}us)"
    )


# ----------------------------------------------------------------------
# FileLock: the stale-break is atomic under racing waiters
# ----------------------------------------------------------------------
class TestStaleBreakRace:
    def test_concurrent_breakers_never_double_admit(self, tmp_path):
        """Regression for the stat-then-unlink ABA race.

        Eight waiters race to break one abandoned lock and then take
        it; the rename-aside break admits exactly one holder at a time
        no matter how the breaks interleave.
        """
        path = tmp_path / "x.lock"
        path.write_text("99999 0 nowhere\n")
        stale = time.time() - 3600
        os.utime(path, (stale, stale))

        occupancy = [0]
        peak = [0]
        guard = threading.Lock()
        failures = []

        def contend():
            try:
                lock = FileLock(
                    path, timeout=10.0, poll=0.001, stale_after=0.5
                )
                with lock:
                    with guard:
                        occupancy[0] += 1
                        peak[0] = max(peak[0], occupancy[0])
                    time.sleep(0.01)
                    with guard:
                        occupancy[0] -= 1
            except Exception as error:  # pragma: no cover - diagnostics
                failures.append(error)

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert peak[0] == 1
        assert METRICS.value("locks.stale_broken") >= 1
        assert not list(tmp_path.glob("*.stale.*"))  # asides cleaned up

    def test_fresh_lock_is_not_broken(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path):
            FileLock(path, stale_after=30.0)._break_if_stale()
            assert path.exists()

    def test_lock_file_records_pid_time_host(self, tmp_path):
        import socket

        path = tmp_path / "x.lock"
        with FileLock(path):
            pid, _stamp, host = path.read_text().split()
            assert int(pid) == os.getpid()
            assert host == socket.gethostname()


# ----------------------------------------------------------------------
# Engine cache: checksums, quarantine-as-miss, ENOSPC no-op
# ----------------------------------------------------------------------
class _StubSpec:
    """Minimal EngineSpec stand-in: the cache only needs cache_token."""

    def cache_token(self) -> str:
        return "stub-token"


class TestCacheCrashConsistency:
    def _roundtrip(self, cache):
        spec = _StubSpec()
        array = np.arange(32, dtype=np.float64)
        assert cache.store(spec, "p", 7, array)
        loaded = cache.load(spec, "p", 7)
        assert loaded is not None
        np.testing.assert_array_equal(loaded, array)
        return spec, array

    def _entry_paths(self, cache):
        (npy,) = cache.directory.glob("*.npy")
        return npy, npy.with_suffix(".json")

    def test_sidecar_records_checksum(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self._roundtrip(cache)
        _npy, sidecar = self._entry_paths(cache)
        meta = json.loads(sidecar.read_text())
        assert len(meta["sha256"]) == 64

    def test_truncated_entry_is_quarantined_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec, _array = self._roundtrip(cache)
        npy, _sidecar = self._entry_paths(cache)
        npy.write_bytes(npy.read_bytes()[:16])  # torn write
        before = METRICS.value("cache.quarantined")
        assert cache.load(spec, "p", 7) is None
        assert METRICS.value("cache.quarantined") == before + 1
        quarantine = cache.directory / "quarantine"
        assert (quarantine / npy.name).exists()  # kept, never deleted
        assert not npy.exists()
        # The slot is reusable: a fresh store round-trips again.
        self._roundtrip(cache)

    def test_bitflip_detected_by_checksum(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec, _array = self._roundtrip(cache)
        npy, _sidecar = self._entry_paths(cache)
        blob = bytearray(npy.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload byte: np.load would accept it
        npy.write_bytes(bytes(blob))
        assert cache.load(spec, "p", 7) is None
        assert (cache.directory / "quarantine" / npy.name).exists()

    def test_injected_corrupt_read_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec, _array = self._roundtrip(cache)
        plan = FaultPlan([FaultRule("cache.npy", 1, "corrupt")])
        with injected(plan):
            assert cache.load(spec, "p", 7) is None
        assert plan.injected  # the corruption actually happened

    def test_legacy_entry_without_checksum_still_loads(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec, array = self._roundtrip(cache)
        _npy, sidecar = self._entry_paths(cache)
        meta = json.loads(sidecar.read_text())
        del meta["sha256"]
        sidecar.write_text(json.dumps(meta))
        loaded = cache.load(spec, "p", 7)
        np.testing.assert_array_equal(loaded, array)

    def test_enospc_store_is_counted_noop(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        before = METRICS.value("cache.enospc_skips")
        plan = FaultPlan([FaultRule("cache.npy", 1, "enospc")])
        with injected(plan):
            with pytest.warns(RuntimeWarning, match="disk full"):
                written = cache.store(
                    _StubSpec(), "p", 7, np.arange(4, dtype=np.float64)
                )
        assert written is False
        assert METRICS.value("cache.enospc_skips") == before + 1
        assert not list(cache.directory.glob("*.npy"))
        assert not list(cache.directory.glob("*.tmp"))

    def test_verify_repairs_temps_and_corruption(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec, _array = self._roundtrip(cache)
        npy, _sidecar = self._entry_paths(cache)
        npy.write_bytes(b"garbage")
        debris = cache.directory / "dead.npy.tmp"
        debris.write_bytes(b"x")
        old = time.time() - 3600
        os.utime(debris, (old, old))
        report = cache.verify(repair=False, grace_s=0.0)
        assert len(report["findings"]) == 2
        assert report["repaired"] == 0
        report = cache.verify(repair=True, grace_s=0.0)
        assert report["repaired"] == 2
        assert cache.verify(repair=False, grace_s=0.0)["findings"] == []

    def test_chaos_crash_matrix_over_cache_ops(self, tmp_path):
        """Crash on both sides of every cache IO op; verify() + a fresh
        store must always restore a clean, correct cache."""
        array = np.arange(16, dtype=np.float64)

        def scenario(directory):
            cache = ResultCache(directory)
            cache.store(_StubSpec(), "p", 3, array)
            return cache.load(_StubSpec(), "p", 3)

        coverage = observe(lambda: scenario(tmp_path / "observe"))
        assert set(coverage) == {"cache.npy", "cache.meta"}
        problems = []
        for index, plan in enumerate(crash_plans(coverage)):
            directory = tmp_path / f"plan{index:02d}"
            try:
                with injected(plan):
                    try:
                        scenario(directory)
                    except (InjectedCrash, OSError):
                        pass
                cache = ResultCache(directory)
                cache.verify(repair=True, grace_s=0.0)
                cache.store(_StubSpec(), "p", 3, array)
                loaded = cache.load(_StubSpec(), "p", 3)
                assert loaded is not None
                np.testing.assert_array_equal(loaded, array)
                residual = cache.verify(repair=False, grace_s=0.0)
                assert residual["findings"] == []
            except AssertionError as error:
                problems.append(f"{plan.name}: {error}")
        assert not problems, "\n".join(problems)


# ----------------------------------------------------------------------
# Artefact store: checksums, quarantine-and-recompute, self-healing
# ----------------------------------------------------------------------
class TestStoreCrashConsistency:
    def _saved(self, tmp_path, probe_module):
        store = ArtifactStore(tmp_path / "store")
        spec = RunSpec(FAULT_EXPERIMENT_ID, seed=5, overrides={"value": 3})
        store.save(execute(spec))
        return store, spec.key()

    def test_missing_artifact_drops_entry(self, tmp_path, probe_module):
        store, key = self._saved(tmp_path, probe_module)
        (store.root / f"{key}.json").unlink()
        with pytest.raises(ArtifactError, match="resubmit to recompute"):
            store.load(key)
        # The dangling entry is gone: the next save re-indexes cleanly.
        assert all(record.key != key for record in store.records())

    def test_checksum_mismatch_quarantines(self, tmp_path, probe_module):
        store, key = self._saved(tmp_path, probe_module)
        artefact = store.root / f"{key}.json"
        artefact.write_text(artefact.read_text() + " ")  # one stray byte
        before = METRICS.value("store.quarantined")
        with pytest.raises(ArtifactError, match="quarantined"):
            store.load(key)
        assert METRICS.value("store.quarantined") == before + 1
        assert (store.root / "quarantine" / f"{key}.json").exists()
        assert not artefact.exists()

    def test_injected_corrupt_read_quarantines(self, tmp_path, probe_module):
        store, key = self._saved(tmp_path, probe_module)
        plan = FaultPlan([FaultRule("store.artifact", 1, "corrupt")])
        with injected(plan):
            with pytest.raises(ArtifactError):
                store.load(key)
        # The on-disk bytes were fine (the *read* was corrupted), but
        # the store cannot tell rot from a bad read: quarantined either
        # way, and recompute restores service.
        spec = RunSpec(FAULT_EXPERIMENT_ID, seed=5, overrides={"value": 3})
        store.save(execute(spec))
        assert store.load(key).spec.seed == 5

    def test_enospc_save_raises_storage_error(self, tmp_path, probe_module):
        store = ArtifactStore(tmp_path / "store")
        spec = RunSpec(FAULT_EXPERIMENT_ID, seed=6)
        result = execute(spec)
        plan = FaultPlan([FaultRule("store.artifact", 1, "enospc")])
        with injected(plan):
            with pytest.raises(StorageError, match="disk full"):
                store.save(result)
        # The failure is clean: the store still works once space exists.
        store.save(result)
        assert store.load(spec.key()).spec.seed == 6

    def test_verify_reports_and_repairs(self, tmp_path, probe_module):
        store, key = self._saved(tmp_path, probe_module)
        artefact = store.root / f"{key}.json"
        artefact.write_text(artefact.read_text() + " ")
        stray = store.root / "stray.json"
        stray.write_text(artefact.read_text())
        report = store.verify(repair=False)
        assert len(report["findings"]) == 2
        report = store.verify(repair=True)
        assert report["repaired"] == 2
        assert store.verify(repair=False)["findings"] == []
        assert any(record.key == "stray" for record in store.records())


# ----------------------------------------------------------------------
# RunSpec.timeout_s: an execution option, never identity
# ----------------------------------------------------------------------
class TestTimeoutSpec:
    def test_rejected_values(self):
        for bad in (0, -1.5, True, "3"):
            with pytest.raises(SpecError):
                RunSpec("EXP-X", timeout_s=bad)

    def test_coerced_and_serialised(self):
        spec = RunSpec("EXP-X", timeout_s=3)
        assert spec.timeout_s == 3.0
        clone = RunSpec.from_payload(spec.to_payload())
        assert clone.timeout_s == 3.0

    def test_never_part_of_key(self, probe_module):
        bare = RunSpec(FAULT_EXPERIMENT_ID, seed=1)
        timed = RunSpec(FAULT_EXPERIMENT_ID, seed=1, timeout_s=9.0)
        assert bare.key() == timed.key()


# ----------------------------------------------------------------------
# Worker: deadline watchdog, ENOSPC, host-tagged identity
# ----------------------------------------------------------------------
class TestWorkerRobustness:
    def test_deadline_kill_requeues_with_backoff(
        self, tmp_path, probe_module
    ):
        root = tmp_path / "jobs"
        block = tmp_path / "block"
        block.write_text("")
        queue = JobQueue(root)
        job = queue.submit(
            RunSpec(
                FAULT_EXPERIMENT_ID,
                seed=2,
                overrides={"block_file": str(block)},
                timeout_s=0.2,
            )
        )
        before = METRICS.value("jobs.deadline_kills")
        _drain(root, jobs=1)
        block.unlink()  # release the (abandoned) spinning thread
        requeued = queue.get(job.id)
        assert requeued.state == QUEUED
        assert requeued.attempts == 1
        assert "deadline of 0.2s exceeded" in requeued.error
        assert METRICS.value("jobs.deadline_kills") == before + 1
        # After backoff the retry completes normally.
        requeued.not_before = 0.0
        queue.update(requeued)
        _drain(root)
        assert queue.get(job.id).state == DONE
        assert queue.store.load(requeued.key).spec.seed == 2

    def test_enospc_on_save_fails_job_cleanly(self, tmp_path, probe_module):
        root = tmp_path / "jobs"
        queue = JobQueue(root)
        job = queue.submit(RunSpec(FAULT_EXPERIMENT_ID, seed=3))
        plan = FaultPlan([FaultRule("store.artifact", 1, "enospc")])
        with injected(plan):
            _drain(root, jobs=1)
        failed = queue.get(job.id)
        assert failed.state == FAILED
        assert failed.error.startswith("storage error:")
        assert "Traceback" not in failed.error
        # The key is recomputable: resubmit runs (marker was released).
        retry = queue.submit(RunSpec(FAULT_EXPERIMENT_ID, seed=3))
        assert retry.state == QUEUED
        _drain(root)
        assert queue.get(retry.id).state == DONE

    def test_worker_id_and_heartbeat_carry_host(
        self, tmp_path, probe_module
    ):
        import socket

        root = tmp_path / "jobs"
        queue = JobQueue(root)
        queue.submit(RunSpec(FAULT_EXPERIMENT_ID, seed=4))
        worker = Worker(str(root), poll=0.002)
        host = socket.gethostname()
        assert worker.id == f"{host}:{worker.pid}"
        claimed = queue.claim(worker_pid=worker.pid)
        assert claimed.worker_host == host
        heartbeat = queue.read_heartbeat(claimed.id)
        assert heartbeat["host"] == host
        assert heartbeat["pid"] == worker.pid


# ----------------------------------------------------------------------
# Queue recovery: every crash-debris class is detected and repaired
# ----------------------------------------------------------------------
class TestQueueRecover:
    def _submit(self, root, probe_module, seed=0):
        queue = JobQueue(root)
        return queue, queue.submit(RunSpec(FAULT_EXPERIMENT_ID, seed=seed))

    def test_orphan_temps_reaped(self, tmp_path, probe_module):
        queue, _job = self._submit(tmp_path / "jobs", probe_module)
        debris = queue.root / "queued" / ".x.json.1.2.tmp"
        debris.write_text("half")
        aside = queue.root / "submit.lock.stale.1.2"
        aside.write_text("x")
        report = queue.recover(grace_s=0.0)
        assert report["orphan_tmps"] == 2
        assert not debris.exists() and not aside.exists()

    def test_half_claimed_record_unclaimed(self, tmp_path, probe_module):
        # Claim rename published, claimer died before the rewrite: the
        # record sits in claimed/ still claiming state=queued.
        queue, job = self._submit(tmp_path / "jobs", probe_module)
        os.rename(
            queue.root / "queued" / f"{job.id}.json",
            queue.root / "claimed" / f"{job.id}.json",
        )
        report = queue.recover(grace_s=0.0)
        assert report["rehomed"] == 1
        recovered = queue.get(job.id)
        assert recovered.state == QUEUED
        assert recovered.worker_pid is None
        assert (queue.root / "queued" / f"{job.id}.json").exists()

    def test_half_finished_record_finalised(self, tmp_path, probe_module):
        # Terminal rename published, worker died before the rewrite:
        # the directory wins, bookkeeping is released.
        queue, job = self._submit(tmp_path / "jobs", probe_module)
        claimed = queue.claim()
        os.rename(
            queue.root / "claimed" / f"{claimed.id}.json",
            queue.root / "done" / f"{claimed.id}.json",
        )
        report = queue.recover(grace_s=0.0)
        assert report["rehomed"] == 1
        finished = queue.get(job.id)
        assert finished.state == DONE
        assert finished.finished_at is not None
        assert not queue.heartbeat_path(job.id).exists()
        assert queue.dedup.markers() == []  # marker released
        # The key is submittable again (no ghost primary).
        again = queue.submit(RunSpec(FAULT_EXPERIMENT_ID, seed=0))
        assert again.state == QUEUED

    def test_crash_during_requeue_rehomed(self, tmp_path, probe_module):
        queue, job = self._submit(tmp_path / "jobs", probe_module)
        claimed = queue.claim()
        plan = FaultPlan([FaultRule("queue.requeue", 1, "crash_after")])
        with injected(plan):
            with pytest.raises(InjectedCrash):
                queue.requeue(claimed, "sweep test")
        # Rename published (record in queued/), payload still claimed.
        report = queue.recover(grace_s=0.0)
        assert report["rehomed"] == 1
        recovered = queue.get(job.id)
        assert recovered.state == QUEUED
        assert recovered.worker_pid is None

    def test_corrupt_record_set_aside(self, tmp_path, probe_module):
        queue, _job = self._submit(tmp_path / "jobs", probe_module)
        bad = queue.root / "queued" / "jdeadbeef.json"
        bad.write_text('{"torn": ')
        report = queue.recover(grace_s=0.0)
        assert report["corrupt_records"] == 1
        assert not bad.exists()
        assert (queue.root / CORRUPT_DIR / "jdeadbeef.json").exists()

    def test_stale_marker_collected(self, tmp_path, probe_module):
        queue = JobQueue(tmp_path / "jobs")
        queue.ensure_layout()
        queue.dedup.register("some-key", "jvanished0000")
        report = queue.recover(grace_s=0.0)
        assert report["stale_markers"] == 1
        assert queue.dedup.markers() == []

    def test_orphan_heartbeat_collected(self, tmp_path, probe_module):
        queue = JobQueue(tmp_path / "jobs")
        queue.ensure_layout()
        queue.heartbeat_path("jghost000000").write_text("{}")
        report = queue.recover(grace_s=0.0)
        assert report["orphan_heartbeats"] == 1

    def test_abandoned_locks_broken(self, tmp_path, probe_module):
        queue = JobQueue(tmp_path / "jobs")
        queue.ensure_layout()
        (queue.root / "submit.lock").write_text("99999 0 nowhere\n")
        report = queue.recover(grace_s=0.0, lock_grace_s=0.0)
        assert report["stale_locks"] == 1
        assert not (queue.root / "submit.lock").exists()

    def test_recover_preserves_healthy_state(self, tmp_path, probe_module):
        queue, job = self._submit(tmp_path / "jobs", probe_module)
        report = queue.recover(grace_s=0.0)
        assert all(count == 0 for key, count in report.items()
                   if key != "stale_markers")
        # The live job's marker points at an active primary: kept.
        assert report["stale_markers"] == 0
        assert queue.get(job.id).state == QUEUED
        assert len(queue.dedup.markers()) == 1


# ----------------------------------------------------------------------
# fsck: read-only findings, --repair convergence
# ----------------------------------------------------------------------
class TestFsck:
    def test_clean_root_is_clean(self, tmp_path, probe_module):
        root = tmp_path / "jobs"
        queue = JobQueue(root)
        queue.submit(RunSpec(FAULT_EXPERIMENT_ID, seed=8))
        _drain(root)
        report = fsck(str(root), grace_s=0.0)
        assert report["clean"] is True
        assert report["findings"] == []
        assert report["repaired"] == 0

    def test_findings_then_repair_then_clean(self, tmp_path, probe_module):
        root = tmp_path / "jobs"
        queue = JobQueue(root)
        job = queue.submit(RunSpec(FAULT_EXPERIMENT_ID, seed=9))
        _drain(root)
        # Break three layers at once.
        (root / "queued" / "jbad.json").write_text("{")
        artefact = root / "store" / f"{job.key}.json"
        artefact.write_text(artefact.read_text() + " ")
        (root / "submit.lock").write_text("99999 0 nowhere\n")
        stale = time.time() - 3600
        os.utime(root / "submit.lock", (stale, stale))

        report = fsck(str(root), grace_s=0.0)
        assert report["clean"] is False
        assert len(report["findings"]) == 3
        # Read-only really was read-only.
        assert (root / "queued" / "jbad.json").exists()

        repaired = fsck(str(root), repair=True, grace_s=0.0)
        assert repaired["repaired"] >= 3
        assert repaired["clean"] is True
        assert repaired["residual"] == []
        assert fsck(str(root), grace_s=0.0)["clean"] is True

    def test_queue_findings_cover_each_class(self, tmp_path, probe_module):
        root = tmp_path / "jobs"
        queue = JobQueue(root)
        queue.ensure_layout()
        (root / "queued" / ".x.json.1.2.tmp").write_text("half")
        (root / "queued" / "jbad.json").write_text("{")
        queue.dedup.register("k", "jgone0000000")
        queue.heartbeat_path("jghost000000").write_text("{}")
        findings = queue_findings(queue, grace_s=0.0, lock_stale_s=0.0)
        text = "\n".join(findings)
        assert "orphan temp file" in text
        assert "unparseable record" in text
        assert "points at inactive job" in text
        assert "orphan heartbeat" in text

    def test_fsck_includes_cache_dir(self, tmp_path, probe_module):
        root = tmp_path / "jobs"
        JobQueue(root).ensure_layout()
        cache = ResultCache(tmp_path / "cache")
        cache.store(_StubSpec(), "p", 1, np.arange(4, dtype=np.float64))
        (npy,) = cache.directory.glob("*.npy")
        npy.write_bytes(b"junk")
        report = fsck(
            str(root), cache_dir=cache.directory, repair=True, grace_s=0.0
        )
        assert report["repaired"] >= 1
        assert report["clean"] is True
        assert "cache" in report


# ----------------------------------------------------------------------
# The chaos suite: 100+ seeded fault plans over the full pipeline
# ----------------------------------------------------------------------
class TestChaos:
    """Crash/tear/corrupt/fill-the-disk at every pipeline injection
    point; recovery + resubmission must converge to fault-free results.

    The scenario is the full service life of two distinct
    configurations plus one duplicate submission: submit x3, drain with
    an inline worker, fetch both artefacts.  Per-key touch files count
    *engine executions*, which bounds duplicated work: a single fault
    may cost at most one re-execution of one key.
    """

    def _specs(self, root):
        return [
            RunSpec(
                FAULT_EXPERIMENT_ID,
                seed=0,
                overrides={
                    "touch_file": str(root / "touch_a.txt"), "value": 7
                },
            ),
            RunSpec(
                FAULT_EXPERIMENT_ID,
                seed=1,
                overrides={
                    "touch_file": str(root / "touch_b.txt"), "value": 9
                },
            ),
            RunSpec(
                FAULT_EXPERIMENT_ID,
                seed=0,
                overrides={
                    "touch_file": str(root / "touch_a.txt"), "value": 7
                },
            ),
        ]

    def _pipeline(self, root):
        """Submit (with one duplicate), drain, fetch.  Returns
        seed -> tables payload for the two distinct configurations."""
        specs = self._specs(root)
        queue = JobQueue(root)
        for spec in specs:
            queue.submit(spec)
        _drain(root)
        fetched = {}
        for spec in specs[:2]:
            result = queue.store.load(spec.key())
            fetched[spec.seed] = [t.to_payload() for t in result.tables]
        return fetched

    def _recover_and_finish(self, root):
        """What an operator (or serve-start) does after a crash."""
        queue = JobQueue(root)
        queue.recover(grace_s=0.0, lock_grace_s=0.0)
        time.sleep(0.01)  # heartbeats must be strictly older than now
        Orchestrator(str(root), workers=0, heartbeat_timeout=0.0).sweep()
        for spec in self._specs(root):
            queue.submit(spec)
        for job in queue.jobs(states=(QUEUED,)):
            if job.not_before:
                job.not_before = 0.0  # lift retry backoff for the test
                queue.update(job)
        _drain(root)
        return queue

    def _check_invariants(self, root, reference, plan):
        queue = JobQueue(root)
        stuck = queue.jobs(states=(QUEUED, CLAIMED, RUNNING))
        assert not stuck, f"jobs left active: {[j.id for j in stuck]}"
        assert not queue.jobs(states=(QUARANTINED,)), (
            "a single fault must never exhaust retries"
        )
        for job in queue.jobs(states=(FAILED,)):
            assert "storage error" in (job.error or ""), (
                f"unexpected failure mode: {job.error!r}"
            )
        for spec in self._specs(root)[:2]:
            result = queue.store.load(spec.key())
            tables = [t.to_payload() for t in result.tables]
            assert tables == reference[spec.seed], (
                f"seed {spec.seed} diverged from the fault-free run"
            )
            touch = root / f"touch_{'a' if spec.seed == 0 else 'b'}.txt"
            executions = len(touch.read_text().splitlines())
            assert 1 <= executions <= 2, (
                f"seed {spec.seed} executed {executions} times"
            )
        report = fsck(str(root), grace_s=0.0)
        assert report["clean"], f"fsck findings: {report['findings']}"

    def test_chaos_matrix(self, tmp_path, probe_module):
        # 1. Fault-free reference: the results every chaos run must
        #    reproduce bit-for-bit, and the coverage map.
        reference = self._pipeline(tmp_path / "reference")
        assert set(reference) == {0, 1}
        coverage = observe(lambda: self._pipeline(tmp_path / "observe"))
        assert coverage, "observing run saw no injection sites"
        for site in ("lock", "queue.record", "queue.claim",
                     "queue.transition", "queue.heartbeat",
                     "dedup.marker", "store.artifact", "store.manifest"):
            assert site in coverage, f"pipeline never exercised {site}"

        # 2. The plan matrix: a crash on both sides of every observed
        #    op, padded with seeded random single-fault plans to 100+.
        plans = crash_plans(coverage)
        plans += seeded_plans(
            coverage, count=max(0, 110 - len(plans)) + 10, seed=1
        )
        assert len(plans) >= 100

        # 3. Run every plan: inject, (maybe) crash, recover, converge.
        problems = []
        for index, plan in enumerate(plans):
            root = tmp_path / f"plan{index:03d}"
            completed = False
            try:
                with injected(plan):
                    try:
                        self._pipeline(root)
                        completed = True
                    except (InjectedCrash, OSError, ArtifactError,
                            JobError, LockTimeout):
                        pass
                if completed:
                    # Even a run that *finished* may carry benign debris
                    # (e.g. a corrupted release read leaves a stale dedup
                    # marker); the serve-start recovery pass collects it.
                    JobQueue(root).recover(grace_s=0.0, lock_grace_s=0.0)
                else:
                    self._recover_and_finish(root)
                if plan.seed is None and not plan.injected:
                    problems.append(f"{plan.name}: crash plan never fired")
                    continue
                self._check_invariants(root, reference, plan)
            except AssertionError as error:
                problems.append(f"plan {index} [{plan.name}]: {error}")
            except BaseException as error:  # noqa: BLE001 - diagnostics
                problems.append(
                    f"plan {index} [{plan.name}]: "
                    f"{type(error).__name__}: {error}"
                )
        assert not problems, (
            f"{len(problems)}/{len(plans)} chaos plans failed:\n"
            + "\n".join(problems[:20])
        )

    def test_filter_faults_do_not_kill_live_workers(
        self, tmp_path, probe_module
    ):
        """stale_clock / pid_reuse heartbeats: the sweep must requeue on
        the skewed evidence without the pipeline losing the result."""
        for kind in ("stale_clock", "pid_reuse"):
            root = tmp_path / kind
            plan = FaultPlan([FaultRule("queue.heartbeat", 1, kind)])
            with injected(plan):
                fetched = self._pipeline(root)
            assert set(fetched) == {0, 1}
            assert plan.injected, f"{kind} filter never applied"
            report = fsck(str(root), grace_s=0.0)
            assert report["clean"], report["findings"]
