"""Tests for the EdgeModel (Definition 2.3)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.edge_model import EdgeModel
from repro.core.node_model import NodeModel
from repro.exceptions import ParameterError


class TestValidation:
    def test_alpha_range(self, triangle):
        with pytest.raises(ParameterError):
            EdgeModel(triangle, [0.0] * 3, alpha=1.0)

    def test_values_shape(self, triangle):
        with pytest.raises(ParameterError):
            EdgeModel(triangle, [0.0, 1.0], alpha=0.5)


class TestSingleStep:
    def test_update_rule(self, triangle):
        process = EdgeModel(triangle, [6.0, 8.0, 9.0], alpha=0.25, seed=1)
        record = process.step()
        expected = 0.25 * record.old_value + 0.75 * process._initial[record.sample[0]]
        assert record.new_value == pytest.approx(expected)

    def test_sample_is_single_neighbour(self, petersen):
        process = EdgeModel(petersen, np.zeros(10), alpha=0.5, seed=2)
        for _ in range(200):
            record = process.step()
            assert len(record.sample) == 1
            assert petersen.has_edge(record.node, record.sample[0])

    def test_only_tail_changes(self, petersen, rng):
        initial = rng.normal(size=10)
        process = EdgeModel(petersen, initial, alpha=0.5, seed=3)
        record = process.step()
        unchanged = [i for i in range(10) if i != record.node]
        assert np.allclose(process.values[unchanged], initial[unchanged])


class TestLaw:
    def test_directed_edge_selection_uniform(self, star5):
        # On a star, each directed edge has probability 1/(2m) = 1/10;
        # the hub is the tail in half of them, so the hub updates with
        # probability 1/2 while a specific leaf updates with prob 1/10.
        process = EdgeModel(star5, np.zeros(6), alpha=0.5, seed=7)
        tail_counts = np.zeros(6)
        trials = 50_000
        for _ in range(trials):
            record = process.step()
            tail_counts[record.node] += 1
        assert tail_counts[0] / trials == pytest.approx(0.5, abs=0.01)
        assert tail_counts[1] / trials == pytest.approx(0.1, abs=0.01)

    def test_expected_state_after_one_step(self, star5):
        from repro.theory.martingale import edge_model_expected_update

        initial = np.arange(6.0)
        alpha = 0.5
        expected = edge_model_expected_update(star5, alpha) @ initial
        total = np.zeros(6)
        replicas = 40_000
        process = EdgeModel(star5, initial, alpha=alpha, seed=8)
        for _ in range(replicas):
            process.reset()
            process.step()
            total += process.values
        assert np.allclose(total / replicas, expected, atol=0.01)

    def test_matches_node_model_law_on_regular_graph(self, petersen, rng):
        # On regular graphs the EdgeModel and the NodeModel with k = 1 are
        # identical in law; compare the empirical mean state after 50 steps.
        initial = rng.normal(size=10)
        replicas = 20_000
        total_edge = np.zeros(10)
        total_node = np.zeros(10)
        edge = EdgeModel(petersen, initial, alpha=0.5, seed=30)
        node = NodeModel(petersen, initial, alpha=0.5, k=1, seed=31)
        for _ in range(replicas):
            edge.reset()
            edge.run(50)
            total_edge += edge.values
            node.reset()
            node.run(50)
            total_node += node.values
        assert np.allclose(total_edge / replicas, total_node / replicas, atol=0.05)

    def test_fast_loop_same_law_as_step(self, star5, rng):
        initial = rng.normal(size=6)
        replicas = 3_000
        total_fast = np.zeros(6)
        total_slow = np.zeros(6)
        fast = EdgeModel(star5, initial, alpha=0.5, seed=41)
        slow = EdgeModel(star5, initial, alpha=0.5, seed=42)
        for _ in range(replicas):
            fast.reset()
            fast.run(100)
            total_fast += fast.values
            slow.reset()
            for _ in range(100):
                slow.step()
            total_slow += slow.values
        assert np.allclose(total_fast / replicas, total_slow / replicas, atol=0.05)


class TestInvariants:
    def test_convex_hull(self, star5, rng):
        initial = rng.normal(size=6)
        process = EdgeModel(star5, initial, alpha=0.5, seed=9)
        process.run(10_000)
        assert process.values.min() >= initial.min() - 1e-12
        assert process.values.max() <= initial.max() + 1e-12

    def test_convergence_on_irregular_graph(self, star5, rng):
        initial = rng.normal(size=6)
        process = EdgeModel(star5, initial, alpha=0.5, seed=9)
        process.run(50_000)
        assert process.discrepancy < 1e-8

    def test_simple_average_is_martingale_statistically(self, star5):
        # E[Avg(t)] = Avg(0) even on irregular graphs (Prop D.1(i)).
        initial = np.array([10.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        avg0 = initial.mean()
        finals = []
        process = EdgeModel(star5, initial, alpha=0.5, seed=10)
        for _ in range(4_000):
            process.reset()
            process.run(200)
            finals.append(process.simple_average)
        finals = np.asarray(finals)
        stderr = finals.std(ddof=1) / np.sqrt(len(finals))
        assert abs(finals.mean() - avg0) < 4 * stderr + 1e-12

    def test_schedule_recording_and_replay(self, petersen, rng):
        initial = rng.normal(size=10)
        recorder = EdgeModel(
            petersen, initial, alpha=0.5, seed=11, record_schedule=True
        )
        recorder.run(300)
        assert len(recorder.schedule) == 300
        replayer = EdgeModel(petersen, initial, alpha=0.5, seed=999)
        replayer.replay(recorder.schedule)
        assert np.allclose(replayer.values, recorder.values)
