"""Equivalence and behaviour tests for the batch engine.

The scalar :mod:`repro.core` processes are the correctness oracle: the
batch engine must reproduce them *exactly* under a shared recorded
schedule (the coupling argument — same selections, same arithmetic) and
*statistically* when each engine draws its own randomness.
"""

import numpy as np
import pytest

from repro.core.convergence import measure_t_eps, run_to_consensus
from repro.core.edge_model import EdgeModel
from repro.core.initial import center_simple, rademacher_values
from repro.core.node_model import NodeModel
from repro.engine import (
    BatchEdgeModel,
    BatchNodeModel,
    EngineSpec,
    ResultCache,
    measure_t_eps_batch,
    run_to_consensus_batch,
    sample_f_batch,
)
from repro.exceptions import ConvergenceError, ParameterError
from repro.graphs.adjacency import Adjacency
from repro.graphs.generators import random_regular_graph
from repro.sim.montecarlo import sample_f_values, sample_t_eps


@pytest.fixture
def regular36():
    return random_regular_graph(36, 4, seed=0)


@pytest.fixture
def values36():
    return center_simple(rademacher_values(36, seed=1))


class TestScheduleReplayEquivalence:
    """Shared schedule => identical trajectories, step for step."""

    def _assert_stepwise(self, reference, batch):
        for step in reference.schedule:
            batch.apply_selection(step.node, step.sample)
        assert batch.t == reference.t
        np.testing.assert_array_equal(
            batch.values, np.broadcast_to(reference.values, batch.values.shape)
        )

    def test_node_model(self, regular36, values36):
        ref = NodeModel(
            regular36, values36, alpha=0.5, k=2, seed=3, record_schedule=True
        )
        ref.run(500)
        batch = BatchNodeModel(
            regular36, values36, alpha=0.5, k=2, replicas=3, seed=99
        )
        self._assert_stepwise(ref, batch)
        assert batch.phi[0] == pytest.approx(ref.phi, abs=1e-12)

    def test_edge_model(self, regular36, values36):
        ref = EdgeModel(
            regular36, values36, alpha=0.7, seed=4, record_schedule=True
        )
        ref.run(500)
        batch = BatchEdgeModel(
            regular36, values36, alpha=0.7, replicas=2, seed=99
        )
        self._assert_stepwise(ref, batch)

    def test_lazy_variant_with_noops(self, regular36, values36):
        ref = NodeModel(
            regular36, values36, alpha=0.5, k=1, seed=5, lazy=True,
            record_schedule=True,
        )
        ref.run(400)
        assert any(step.is_noop for step in ref.schedule)
        batch = BatchNodeModel(
            regular36, values36, alpha=0.5, k=1, replicas=2, seed=99
        )
        batch.replay(ref.schedule)
        assert batch.t == ref.t
        np.testing.assert_array_equal(batch.values[0], ref.values)

    def test_stepwise_values_track_reference(self, regular36, values36):
        """Not just the endpoint: every intermediate state matches."""
        ref = NodeModel(
            regular36, values36, alpha=0.5, k=3, seed=6, record_schedule=True
        )
        batch = BatchNodeModel(
            regular36, values36, alpha=0.5, k=3, replicas=2, seed=99
        )
        for _ in range(100):
            ref.step()
            batch.apply_selection(ref.schedule[-1].node, ref.schedule[-1].sample)
            np.testing.assert_array_equal(batch.values[1], ref.values)


class TestBackendAgreement:
    def test_dense_and_csr_identical_k1_irregular(self, star5):
        import networkx as nx

        graph = nx.connected_watts_strogatz_graph(30, 6, 0.3, seed=2)
        values = center_simple(np.random.default_rng(0).normal(size=30))
        dense = BatchNodeModel(
            graph, values, alpha=0.5, k=1, replicas=8, seed=11, backend="dense"
        )
        csr = BatchNodeModel(
            graph, values, alpha=0.5, k=1, replicas=8, seed=11, backend="csr"
        )
        dense.run(400)
        csr.run(400)
        np.testing.assert_array_equal(dense.values, csr.values)

    def test_dense_and_csr_identical_general_k(self):
        import networkx as nx

        graph = nx.connected_watts_strogatz_graph(30, 6, 0.3, seed=3)
        values = center_simple(np.random.default_rng(1).normal(size=30))
        dense = BatchNodeModel(
            graph, values, alpha=0.5, k=2, replicas=8, seed=13, backend="dense"
        )
        csr = BatchNodeModel(
            graph, values, alpha=0.5, k=2, replicas=8, seed=13, backend="csr"
        )
        dense.run(400)
        csr.run(400)
        np.testing.assert_array_equal(dense.values, csr.values)

    def test_unknown_backend_rejected(self, regular36, values36):
        with pytest.raises(ParameterError):
            BatchNodeModel(
                regular36, values36, alpha=0.5, replicas=2, backend="gpu"
            )


class TestStatisticalEquivalence:
    """Each engine draws its own randomness; moments must agree."""

    def test_f_moments_match_loop(self, regular36, values36):
        def make(rng):
            return NodeModel(regular36, values36, alpha=0.5, k=1, seed=rng)

        loop = sample_f_values(
            make, 300, seed=5, discrepancy_tol=1e-6, engine="loop"
        )
        batch = sample_f_values(
            make, 300, seed=5, discrepancy_tol=1e-6, engine="batch"
        )
        assert len(batch) == len(loop) == 300
        # Means: both estimate E[F] = 0; compare within combined stderr.
        stderr = np.hypot(loop.std() / np.sqrt(300), batch.std() / np.sqrt(300))
        assert abs(loop.mean() - batch.mean()) < 5 * stderr
        # Variances: Var(F) is the paper's headline quantity.
        ratio = batch.var(ddof=1) / loop.var(ddof=1)
        assert 0.6 < ratio < 1.7

    def test_t_eps_distribution_matches_loop(self, regular36, values36):
        def make(rng):
            return NodeModel(regular36, values36, alpha=0.5, k=1, seed=rng)

        loop = sample_t_eps(make, 1e-6, 60, seed=6, engine="loop")
        batch = sample_t_eps(make, 1e-6, 60, seed=6, engine="batch")
        assert np.all(batch > 0)
        assert 0.8 < batch.mean() / loop.mean() < 1.25

    def test_edge_model_f_moments_match_loop(self, regular36, values36):
        def make(rng):
            return EdgeModel(regular36, values36, alpha=0.5, seed=rng)

        loop = sample_f_values(
            make, 200, seed=7, discrepancy_tol=1e-6, engine="loop"
        )
        batch = sample_f_values(
            make, 200, seed=7, discrepancy_tol=1e-6, engine="batch"
        )
        ratio = batch.var(ddof=1) / loop.var(ddof=1)
        assert 0.5 < ratio < 2.0


class TestDrivers:
    def test_consensus_matches_scalar_semantics(self, regular36, values36):
        batch = BatchNodeModel(
            regular36, values36, alpha=0.5, k=1, replicas=32, seed=5
        )
        result = run_to_consensus_batch(batch, discrepancy_tol=1e-6)
        assert len(result) == 32
        assert np.all(result.residual_discrepancy <= 1e-6)
        assert np.all(result.t > 0)
        # F values stay in the convex hull of the initial values.
        assert np.all(result.value >= values36.min() - 1e-9)
        assert np.all(result.value <= values36.max() + 1e-9)
        # Every replica is frozen afterwards.
        assert batch.num_active == 0

    def test_consensus_budget_exhaustion_raises(self, regular36, values36):
        batch = BatchNodeModel(
            regular36, values36, alpha=0.5, k=1, replicas=4, seed=5
        )
        with pytest.raises(ConvergenceError):
            run_to_consensus_batch(batch, discrepancy_tol=1e-9, max_steps=10)

    def test_t_eps_exact_counting(self, regular36, values36):
        """Batch hitting times agree with the scalar loop's in scale."""
        batch = BatchNodeModel(
            regular36, values36, alpha=0.5, k=1, replicas=16, seed=8
        )
        times = measure_t_eps_batch(batch, 1e-6, 10_000_000)
        reference = [
            measure_t_eps(
                NodeModel(regular36, values36, alpha=0.5, k=1, seed=s),
                1e-6,
                10_000_000,
            )
            for s in range(3)
        ]
        assert 0.5 < times.mean() / np.mean(reference) < 2.0

    def test_already_converged_replicas_report_zero(self, regular36):
        batch = BatchNodeModel(
            regular36, np.zeros(36), alpha=0.5, k=1, replicas=4, seed=9
        )
        times = batch.run_until_phi(1e-6, 100)
        np.testing.assert_array_equal(times, 0)

    def test_frozen_converged_batch_reports_zero(self, regular36, values36):
        """A fully consensus-frozen batch is not a T_eps failure."""
        batch = BatchNodeModel(
            regular36, values36, alpha=0.5, k=1, replicas=4, seed=11
        )
        run_to_consensus_batch(batch, discrepancy_tol=1e-6)
        assert batch.num_active == 0
        times = measure_t_eps_batch(batch, 1.0, 100)
        np.testing.assert_array_equal(times, 0)

    def test_multiprocessing_shards_match_serial(self, regular36, values36):
        spec = EngineSpec(
            "node", Adjacency.from_graph(regular36), values36, 0.5, 1
        )
        serial = sample_f_batch(
            spec, 120, seed=7, discrepancy_tol=1e-6, shard_size=48, processes=1
        )
        parallel = sample_f_batch(
            spec, 120, seed=7, discrepancy_tol=1e-6, shard_size=48, processes=2
        )
        np.testing.assert_array_equal(serial, parallel)


class TestCache:
    def test_round_trip_and_reuse(self, tmp_path, regular36, values36):
        spec = EngineSpec(
            "node", Adjacency.from_graph(regular36), values36, 0.5, 1
        )
        cache = ResultCache(tmp_path)
        first = sample_f_batch(
            spec, 60, seed=3, discrepancy_tol=1e-6, cache=cache
        )
        assert list(tmp_path.glob("*.npy"))
        again = sample_f_batch(
            spec, 60, seed=3, discrepancy_tol=1e-6, cache=cache
        )
        np.testing.assert_array_equal(first, again)

    def test_key_separates_parameters(self, tmp_path, regular36, values36):
        spec = EngineSpec(
            "node", Adjacency.from_graph(regular36), values36, 0.5, 1
        )
        cache = ResultCache(tmp_path)
        a = sample_f_batch(spec, 40, seed=3, discrepancy_tol=1e-6, cache=cache)
        b = sample_f_batch(spec, 40, seed=4, discrepancy_tol=1e-6, cache=cache)
        assert len(list(tmp_path.glob("*.npy"))) == 2
        assert not np.array_equal(a, b)

    def test_nondeterministic_seed_not_cached(self, tmp_path, regular36, values36):
        spec = EngineSpec(
            "node", Adjacency.from_graph(regular36), values36, 0.5, 1
        )
        cache = ResultCache(tmp_path)
        sample_f_batch(spec, 20, seed=None, discrepancy_tol=1e-6, cache=cache)
        assert not list(tmp_path.glob("*.npy"))

    def test_via_sample_f_values_cache_dir(self, tmp_path, regular36, values36):
        def make(rng):
            return NodeModel(regular36, values36, alpha=0.5, k=1, seed=rng)

        first = sample_f_values(
            make, 40, seed=9, discrepancy_tol=1e-6, cache_dir=str(tmp_path)
        )
        second = sample_f_values(
            make, 40, seed=9, discrepancy_tol=1e-6, cache_dir=str(tmp_path)
        )
        np.testing.assert_array_equal(first, second)
        assert list(tmp_path.glob("*.npy"))


class TestEngineSelection:
    def test_loop_fallback_for_custom_process(self, regular36, values36):
        """A factory the engine cannot describe silently uses the loop.

        A subclass may override the selection law, so it must not be
        batchable even when it adds nothing else.
        """
        from repro.sim.montecarlo import _derive_spec

        class Custom(NodeModel):
            pass

        def make(rng):
            return Custom(regular36, values36, alpha=0.5, k=1, seed=rng)

        assert _derive_spec(make, 1) is None
        sample = sample_f_values(make, 5, seed=1, discrepancy_tol=1e-6)
        assert len(sample) == 5

    def test_loop_fallback_for_per_replica_initials(self, regular36):
        """Randomised per-replica starts are detected and loop-routed."""

        def make(rng):
            return NodeModel(
                regular36, rng.normal(size=36), alpha=0.5, k=1, seed=rng
            )

        sample = sample_f_values(make, 5, seed=2, discrepancy_tol=1e-6)
        assert len(np.unique(np.round(sample, 12))) > 1

    def test_unknown_engine_rejected(self, regular36, values36):
        def make(rng):
            return NodeModel(regular36, values36, alpha=0.5, k=1, seed=rng)

        with pytest.raises(ParameterError):
            sample_f_values(make, 5, seed=1, engine="warp")

    def test_spec_equality_and_hash(self, regular36, values36):
        """Specs compare and hash by content (usable as dict/set keys)."""
        adjacency = Adjacency.from_graph(regular36)
        a = EngineSpec("node", adjacency, values36, 0.5, 2)
        b = EngineSpec("node", adjacency, values36.copy(), 0.5, 2)
        c = EngineSpec("node", adjacency, values36, 0.5, 4)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2


class TestBatchConstruction:
    def test_matrix_initials_per_replica(self, regular36, rng):
        starts = rng.normal(size=(5, 36))
        batch = BatchNodeModel(regular36, starts, alpha=0.5, k=1, seed=1)
        assert batch.replicas == 5
        np.testing.assert_array_equal(batch.values, starts)

    def test_shape_validation(self, regular36, values36):
        with pytest.raises(ParameterError):
            BatchNodeModel(regular36, values36, alpha=0.5, k=1)  # no replicas
        with pytest.raises(ParameterError):
            BatchNodeModel(
                regular36, values36[:-1], alpha=0.5, k=1, replicas=2
            )
        with pytest.raises(ParameterError):
            BatchNodeModel(
                regular36, np.zeros((3, 36)), alpha=0.5, k=1, replicas=4
            )

    def test_k_validation_matches_scalar(self, star5):
        values = np.zeros(6)
        with pytest.raises(ParameterError):
            BatchNodeModel(star5, values, alpha=0.5, k=2, replicas=2)

    def test_observables_shapes(self, regular36, values36):
        batch = BatchNodeModel(
            regular36, values36, alpha=0.5, k=1, replicas=7, seed=2
        )
        batch.run(50)
        assert batch.phi.shape == (7,)
        assert batch.discrepancy.shape == (7,)
        assert batch.weighted_average.shape == (7,)
        assert batch.simple_average.shape == (7,)

    def test_martingale_preserved(self, regular36, values36):
        """The pi-weighted mean is a martingale; it never drifts far."""
        batch = BatchNodeModel(
            regular36, values36, alpha=0.5, k=1, replicas=64, seed=3
        )
        before = batch.weighted_average.mean()
        batch.run(2_000)
        batch.resync_moments()
        after = batch.weighted_average.mean()
        assert abs(after - before) < 0.2
