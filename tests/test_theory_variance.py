"""Tests for the variance bounds (Lemma 5.7 / Prop 5.8 / Thm 2.2(2))."""

import networkx as nx
import numpy as np
import pytest

from repro.core.initial import center_simple, rademacher_values
from repro.dual.qchain import QChain
from repro.exceptions import NotRegularError, ParameterError
from repro.theory import variance as var


class TestMuDifferences:
    def test_algebraic_forms(self):
        """mu_0 - mu_+ = (1-a)(kd + d - 2k) ell and
        mu_1 - mu_+ = (1-a)(1-k) ell — the simplifications used in the
        Theorem 2.2(2) proof."""
        n, d, k, alpha = 20, 5, 3, 0.4
        gamma = k * (1 + alpha) - (1 - alpha)
        ell = 1.0 / (n * (n * (d * gamma - 2 * alpha * k) + 2 * (1 - alpha) * (d - k)))
        diff0, diff1 = var.mu_differences(n, d, k, alpha)
        assert diff0 == pytest.approx((1 - alpha) * (k * d + d - 2 * k) * ell)
        assert diff1 == pytest.approx((1 - alpha) * (1 - k) * ell)

    def test_diff1_zero_for_k1(self):
        _, diff1 = var.mu_differences(20, 5, 1, 0.4)
        assert diff1 == pytest.approx(0.0)

    def test_diff0_positive_diff1_nonpositive(self):
        for k in (1, 2, 5):
            diff0, diff1 = var.mu_differences(20, 5, k, 0.4)
            assert diff0 > 0
            assert diff1 <= 1e-15


class TestEdgeCrossTerm:
    def test_matches_direct_sum(self, petersen, rng):
        values = rng.normal(size=10)
        direct = sum(
            values[u] * values[v] + values[v] * values[u]
            for u, v in petersen.edges()
        )
        assert var.edge_cross_term(petersen, values) == pytest.approx(direct)

    def test_quadratic_identity(self, petersen, rng):
        """sum_{E+} xi_u xi_v + d ||xi||^2 = sum_{{u,v} in E} (xi_u + xi_v)^2
        (used in the Theorem 2.2(2) proof), hence in [0, 2d ||xi||^2]."""
        values = rng.normal(size=10)
        d = 3
        cross = var.edge_cross_term(petersen, values)
        norm_sq = float(np.sum(values**2))
        edge_sum = sum((values[u] + values[v]) ** 2 for u, v in petersen.edges())
        assert cross + d * norm_sq == pytest.approx(edge_sum)
        assert -d * norm_sq <= cross <= 2 * d * norm_sq - d * norm_sq + 1e-9


class TestVarianceBounds:
    def test_requires_regular(self, star5):
        with pytest.raises(NotRegularError):
            var.variance_bounds(star5, np.zeros(6), alpha=0.5)

    def test_requires_centered(self, petersen):
        with pytest.raises(ParameterError, match="centered"):
            var.variance_bounds(petersen, np.ones(10), alpha=0.5)

    def test_bounds_bracket_core(self, petersen, rng):
        values = center_simple(rng.normal(size=10))
        bounds = var.variance_bounds(petersen, values, alpha=0.5, k=2)
        assert bounds.lower <= bounds.core <= bounds.upper
        assert bounds.upper - bounds.lower == pytest.approx(2.0 / 10**5)

    def test_core_within_envelope(self, petersen, rng):
        values = center_simple(rng.normal(size=10))
        bounds = var.variance_bounds(petersen, values, alpha=0.5, k=2)
        assert bounds.lower_envelope - 1e-12 <= bounds.core <= bounds.upper_envelope + 1e-12

    def test_core_equals_quadratic_form_of_exact_mu(self, petersen, rng):
        """Cross-validation against the full Q-chain stationary vector:
        core = sum_{u,v} mu(u,v) xi_u xi_v (with Avg(0) = 0)."""
        values = center_simple(rng.normal(size=10))
        for k in (1, 2, 3):
            bounds = var.variance_bounds(petersen, values, alpha=0.4, k=k)
            chain = QChain(petersen, alpha=0.4, k=k)
            mu = chain.stationary_numeric()
            quadratic = var.variance_quadratic_form(mu, values)
            assert bounds.core == pytest.approx(quadratic, abs=1e-10)

    def test_k1_core_is_placement_independent(self, rng):
        """For k = 1, core = (mu_0 - mu_+) ||xi||^2 — permuting values
        across nodes cannot change it."""
        graph = nx.cycle_graph(12)
        values = center_simple(rng.normal(size=12))
        permuted = values[rng.permutation(12)]
        a = var.variance_bounds(graph, values, alpha=0.5, k=1)
        b = var.variance_bounds(graph, permuted, alpha=0.5, k=1)
        assert a.core == pytest.approx(b.core)

    def test_envelope_theta_scaling(self):
        """Both envelope ends are Theta(||xi||^2 / n^2): growing n by 4x at
        fixed d, k, alpha and ||xi||^2 = n shrinks the variance ~4x."""
        alpha, d, k = 0.5, 4, 2
        low_small, high_small = var.variance_envelope(50, d, k, alpha, 50.0)
        low_big, high_big = var.variance_envelope(200, d, k, alpha, 200.0)
        assert high_small / high_big == pytest.approx(4.0, rel=0.15)
        assert low_small / low_big == pytest.approx(4.0, rel=0.15)

    def test_envelope_graph_independence(self):
        """The envelope depends only on (n, d, k, alpha, ||xi||^2) — the
        'clique vs cycle' statement for graphs of equal degree."""
        a = var.variance_envelope(30, 4, 2, 0.5, 30.0)
        b = var.variance_envelope(30, 4, 2, 0.5, 30.0)
        assert a == b

    def test_contains(self, petersen, rng):
        values = center_simple(rng.normal(size=10))
        bounds = var.variance_bounds(petersen, values, alpha=0.5, k=1)
        assert bounds.contains(bounds.core)
        assert not bounds.contains(bounds.upper + 1.0)


class TestTimeBounds:
    def test_weighted_formula(self):
        assert var.variance_time_bound_weighted(100, 4, 20, 2.0) == pytest.approx(
            100 * (4 * 2.0 / 40.0) ** 2
        )

    def test_avg_formula(self):
        assert var.variance_time_bound_avg(100, 10, 2.0) == pytest.approx(
            100 * 4.0 / 100.0
        )

    def test_monotone_in_t(self):
        assert var.variance_time_bound_avg(200, 10, 2.0) > var.variance_time_bound_avg(
            100, 10, 2.0
        )

    def test_validation(self):
        with pytest.raises(ParameterError):
            var.variance_time_bound_weighted(-1, 4, 20, 2.0)
        with pytest.raises(ParameterError):
            var.variance_time_bound_avg(10, 0, 2.0)


class TestPaperDisplayCoefficient:
    def test_positive_and_theta_consistent(self):
        coefficient = var.paper_display_coefficient(100, 4, 2, 0.5)
        assert coefficient > 0
        # Same Theta(1/n^2) scale as the exact envelope coefficient.
        _, exact_high = var.variance_envelope(100, 4, 2, 0.5, 1.0)
        assert 0.1 < coefficient / exact_high < 10.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            var.paper_display_coefficient(100, 4, 5, 0.5)


class TestMonteCarloAgreement:
    def test_variance_of_f_matches_core_small_complete_graph(self):
        """End-to-end: Monte-Carlo Var(F) on K5 vs the Prop 5.8 core."""
        from repro.core.node_model import NodeModel
        from repro.sim.montecarlo import sample_f_values

        graph = nx.complete_graph(5)
        values = center_simple(rademacher_values(5, seed=3))
        bounds = var.variance_bounds(graph, values, alpha=0.5, k=1)

        def make(rng):
            return NodeModel(graph, values, alpha=0.5, k=1, seed=rng)

        sample = sample_f_values(make, 400, seed=11, discrepancy_tol=1e-7)
        measured = float(np.var(sample, ddof=1))
        # 400 replicas: relative sd of the variance ~ sqrt(2/399) ~ 7%.
        assert measured == pytest.approx(bounds.core, rel=0.35)
