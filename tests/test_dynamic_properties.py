"""Property-based (hypothesis) invariants of the dynamic-graph engine.

Random snapshot sequences, random switch cadences, random block sizes
and random run chunkings — the per-step structural facts must survive
all of them:

* **convex-hull containment**: every state stays inside the hull of the
  initial values, whatever snapshot is active;
* **discrepancy monotonicity**: the spread never increases, step by
  step, across switches and block boundaries alike;
* the **martingale dichotomy**: the uniform functional is preserved by
  the NodeModel's expected one-step update in *every* snapshot iff all
  snapshots are regular with equal degree (``GraphSchedule.uniform_pi``),
  in which case the engine shares one ``pi`` across switches and the
  simple average is a martingale of the whole dynamic process.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import BatchNodeModel, CyclicSchedule, RandomSchedule
from repro.graphs.adjacency import Adjacency

N = 12

#: Regular degree-4 snapshot pool (uniform pi everywhere).
REGULAR_POOL = [
    Adjacency.from_graph(nx.random_regular_graph(4, N, seed=s))
    for s in range(3)
] + [Adjacency.from_graph(nx.circulant_graph(N, [1, 2]))]

#: Mixed pool: the irregular members break the uniform-pi martingale.
MIXED_POOL = REGULAR_POOL[:2] + [
    Adjacency.from_graph(nx.cycle_graph(N)),  # regular, different degree
    Adjacency.from_graph(nx.star_graph(N - 1)),
    Adjacency.from_graph(nx.wheel_graph(N)),
    Adjacency.from_graph(nx.connected_watts_strogatz_graph(N, 4, 0.3, seed=7)),
]


@st.composite
def snapshot_sequence(draw, pool):
    size = draw(st.integers(min_value=1, max_value=4))
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(pool) - 1),
            min_size=size,
            max_size=size,
        )
    )
    return [pool[i] for i in indices]


chunk_lists = st.lists(
    st.integers(min_value=1, max_value=40), min_size=1, max_size=8
)


class TestHullAndDiscrepancy:
    @settings(max_examples=25, deadline=None)
    @given(
        snapshots=snapshot_sequence(MIXED_POOL),
        switch_every=st.integers(min_value=1, max_value=30),
        block_rounds=st.integers(min_value=1, max_value=300),
        chunks=chunk_lists,
        shuffle=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_hull_contained_and_spread_monotone(
        self, snapshots, switch_every, block_rounds, chunks, shuffle, seed
    ):
        schedule = (
            RandomSchedule(snapshots, switch_every, seed=seed)
            if shuffle
            else CyclicSchedule(snapshots, switch_every)
        )
        initial = np.random.default_rng(seed).normal(size=N)
        batch = BatchNodeModel(
            schedule, initial, 0.5, k=1, replicas=2, seed=seed,
            kernel="fused",
        )
        batch.block_rounds = block_rounds
        lo, hi = initial.min(), initial.max()
        spread = batch.discrepancy
        for chunk in chunks:
            batch.run(chunk)
            assert batch.values.min() >= lo - 1e-12
            assert batch.values.max() <= hi + 1e-12
            new_spread = batch.discrepancy
            assert np.all(new_spread <= spread + 1e-12)
            spread = new_spread

    @settings(max_examples=10, deadline=None)
    @given(
        switch_every=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_spread_monotone_per_single_step(self, switch_every, seed):
        """Chunk size 1 checks the invariant literally step by step,
        including the step *on* every switch boundary."""
        schedule = CyclicSchedule(MIXED_POOL[:3], switch_every)
        initial = np.random.default_rng(seed).normal(size=N)
        batch = BatchNodeModel(
            schedule, initial, 0.5, k=1, replicas=2, seed=seed,
            kernel="fused",
        )
        spread = batch.discrepancy
        for _ in range(4 * switch_every + 3):
            batch.run(1)
            new_spread = batch.discrepancy
            assert np.all(new_spread <= spread + 1e-12)
            spread = new_spread


class TestMartingaleDichotomy:
    """Uniform-pi martingale across switches iff regular equal degree."""

    @settings(max_examples=25, deadline=None)
    @given(
        snapshots=snapshot_sequence(MIXED_POOL),
        switch_every=st.integers(min_value=1, max_value=30),
    )
    def test_uniform_pi_iff_regular_equal_degree(
        self, snapshots, switch_every
    ):
        from repro.theory.martingale import node_model_expected_update

        schedule = CyclicSchedule(snapshots, switch_every)
        degrees = {a.d_min for a in snapshots} | {a.d_max for a in snapshots}
        expected = len(degrees) == 1
        assert schedule.uniform_pi == expected
        # The matrix statement: u^T E[L] = u^T in every snapshot iff
        # uniform_pi — so the simple average is preserved across
        # arbitrary switch points exactly in that case.
        uniform = np.full(N, 1.0 / N)
        drifts = [
            float(np.abs(uniform @ node_model_expected_update(a, 0.5) - uniform).max())
            for a in snapshots
        ]
        if expected:
            assert max(drifts) < 1e-12
        else:
            irregular = [a for a in snapshots if not a.is_regular]
            if irregular:  # heterogeneous degrees within one snapshot
                assert max(drifts) > 1e-9

    @settings(max_examples=15, deadline=None)
    @given(
        snapshots=snapshot_sequence(REGULAR_POOL),
        switch_every=st.integers(min_value=1, max_value=20),
        steps=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_engine_shares_pi_across_regular_switches(
        self, snapshots, switch_every, steps, seed
    ):
        """On a uniform-pi schedule the engine never resyncs at a
        switch: the weighted average *is* the simple average, tracked
        incrementally straight through every boundary."""
        schedule = CyclicSchedule(snapshots, switch_every)
        assert schedule.uniform_pi
        initial = np.random.default_rng(seed).normal(size=N)
        batch = BatchNodeModel(
            schedule, initial, 0.5, k=1, replicas=2, seed=seed,
            kernel="fused",
        )
        batch.run(steps)
        np.testing.assert_allclose(
            batch.weighted_average, batch.simple_average, atol=1e-9
        )
        pis = [a.stationary_pi() for a in schedule.snapshots]
        for pi in pis[1:]:
            np.testing.assert_array_equal(pi, pis[0])


class TestHittingTimeProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        switch_every=st.integers(min_value=3, max_value=40),
        block_rounds=st.integers(min_value=2, max_value=400),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_block_sizes_keep_hits_exact(
        self, switch_every, block_rounds, seed
    ):
        """Random (block_rounds, switch_every) pairs against the
        per-round reference — the hypothesis form of the fixed-grid
        invariance test in ``test_dynamic_engine.py``."""
        schedule = CyclicSchedule(MIXED_POOL[:3], switch_every)
        initial = np.random.default_rng(seed).normal(size=N)

        def make():
            return BatchNodeModel(
                schedule, initial, 0.5, k=1, replicas=4, seed=seed,
                kernel="fused",
            )

        reference = make()
        reference.block_rounds = 1
        expected = reference.run_until_phi(1e-3, 200_000)
        batch = make()
        batch.block_rounds = block_rounds
        np.testing.assert_array_equal(
            batch.run_until_phi(1e-3, 200_000), expected
        )
