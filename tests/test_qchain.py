"""Tests for the Q-chain and Lemma 5.7's closed-form stationary law."""

import networkx as nx
import numpy as np
import pytest

from repro.dual.qchain import (
    QChain,
    mu_closed_form,
    stationary_distribution_numeric,
)
from repro.exceptions import NotRegularError, ParameterError
from repro.graphs.properties import distance_classes


REGULAR_CASES = [
    ("cycle6", nx.cycle_graph(6)),
    ("complete5", nx.complete_graph(5)),
    ("petersen", nx.petersen_graph()),
    ("cube", nx.convert_node_labels_to_integers(nx.hypercube_graph(3))),
]


class TestMuClosedForm:
    @pytest.mark.parametrize("alpha", [0.1, 0.5, 0.9])
    @pytest.mark.parametrize("n,d,k", [(10, 3, 1), (10, 3, 2), (20, 5, 4), (8, 7, 7)])
    def test_normalisation_eq56(self, n, d, k, alpha):
        mu0, mu1, mu_plus = mu_closed_form(n, d, k, alpha)
        total = n * mu0 + n * d * mu1 + n * (n - d - 1) * mu_plus
        assert total == pytest.approx(1.0)

    @pytest.mark.parametrize("alpha", [0.1, 0.5, 0.9])
    def test_k1_makes_mu1_equal_mu_plus(self, alpha):
        _, mu1, mu_plus = mu_closed_form(12, 4, 1, alpha)
        assert mu1 == pytest.approx(mu_plus)

    def test_mu0_largest(self):
        mu0, mu1, mu_plus = mu_closed_form(12, 4, 2, 0.5)
        assert mu0 > mu1
        assert mu0 > mu_plus

    def test_mu1_below_mu_plus_for_k_greater_1(self):
        # mu_1 - mu_+ = (1-alpha)(1-k) ell <= 0.
        _, mu1, mu_plus = mu_closed_form(12, 4, 3, 0.5)
        assert mu1 < mu_plus

    def test_all_positive(self):
        for alpha in (0.05, 0.5, 0.95):
            for k in (1, 2, 4):
                values = mu_closed_form(16, 4, k, alpha)
                assert all(v > 0 for v in values)

    def test_validation(self):
        with pytest.raises(ParameterError):
            mu_closed_form(10, 3, 4, 0.5)  # k > d
        with pytest.raises(ParameterError):
            mu_closed_form(10, 3, 1, 1.0)


class TestQChainConstruction:
    def test_requires_regular(self, star5):
        with pytest.raises(NotRegularError):
            QChain(star5, alpha=0.5)

    def test_parameter_validation(self, petersen):
        with pytest.raises(ParameterError):
            QChain(petersen, alpha=0.5, k=4)
        with pytest.raises(ParameterError):
            QChain(petersen, alpha=1.0)

    @pytest.mark.parametrize("name,graph", REGULAR_CASES)
    @pytest.mark.parametrize("alpha", [0.25, 0.75])
    def test_transition_matrix_row_stochastic(self, name, graph, alpha):
        chain = QChain(graph, alpha=alpha, k=1)
        q = chain.transition_matrix()
        assert np.allclose(q.sum(axis=1), 1.0)
        assert np.all(q >= -1e-15)

    @pytest.mark.parametrize("name,graph", REGULAR_CASES)
    @pytest.mark.parametrize("alpha", [0.3, 0.6])
    @pytest.mark.parametrize("k", [1, 2])
    def test_formulas_match_enumeration(self, name, graph, alpha, k):
        """The paper's case formulas (Eqs. 14-21) against brute force."""
        chain = QChain(graph, alpha=alpha, k=k)
        assert np.allclose(
            chain.transition_matrix(),
            chain.transition_matrix_enumerated(),
            atol=1e-12,
        )

    def test_formulas_match_enumeration_k_equals_d(self, petersen):
        chain = QChain(petersen, alpha=0.5, k=3)
        assert np.allclose(
            chain.transition_matrix(),
            chain.transition_matrix_enumerated(),
            atol=1e-12,
        )


class TestStationaryDistribution:
    @pytest.mark.parametrize("name,graph", REGULAR_CASES)
    @pytest.mark.parametrize("alpha", [0.25, 0.5, 0.75])
    @pytest.mark.parametrize("k", [1, 2])
    def test_lemma_57_closed_form_is_stationary(self, name, graph, alpha, k):
        """The heart of Lemma 5.7: mu Q = mu for the three-value vector."""
        chain = QChain(graph, alpha=alpha, k=k)
        q = chain.transition_matrix()
        mu = chain.stationary_closed_form()
        assert np.allclose(mu @ q, mu, atol=1e-13)
        assert mu.sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("name,graph", REGULAR_CASES)
    def test_closed_form_matches_numeric(self, name, graph):
        chain = QChain(graph, alpha=0.5, k=2 if graph.degree(0) >= 2 else 1)
        assert np.allclose(
            chain.stationary_closed_form(), chain.stationary_numeric(), atol=1e-10
        )

    def test_three_values_indexed_by_distance(self, petersen):
        chain = QChain(petersen, alpha=0.4, k=2)
        mu = chain.stationary_closed_form()
        classes = distance_classes(petersen)
        mu0, mu1, mu_plus = mu_closed_form(10, 3, 2, 0.4)
        for u, v in classes.s0:
            assert mu[chain.state_index(u, v)] == pytest.approx(mu0)
        for u, v in classes.s1:
            assert mu[chain.state_index(u, v)] == pytest.approx(mu1)
        for u, v in classes.s_plus:
            assert mu[chain.state_index(u, v)] == pytest.approx(mu_plus)

    def test_not_reversible_for_k_greater_1(self, petersen):
        # The paper's observation: S_0 -> S_+ transitions exist for k > 1
        # but not their reverses.
        chain = QChain(petersen, alpha=0.5, k=2)
        assert not chain.is_reversible()

    def test_reversible_for_k1_on_vertex_transitive(self, petersen):
        chain = QChain(petersen, alpha=0.5, k=1)
        assert chain.is_reversible()

    def test_s0_to_splus_transition_asymmetry(self, petersen):
        """Explicit check of the irreversibility example in Lemma 5.7's proof."""
        chain = QChain(petersen, alpha=0.5, k=2)
        q = chain.transition_matrix()
        # Find adjacent-to-x pair (u, v) at distance 2 (girth 5 guarantees
        # two neighbours of x are non-adjacent).
        x = 0
        neighbours = sorted(petersen.neighbors(x))
        u, v = neighbours[0], neighbours[1]
        assert not petersen.has_edge(u, v)
        src = chain.state_index(x, x)
        dst = chain.state_index(u, v)
        assert q[src, dst] > 0  # S_0 -> S_+ possible
        assert q[dst, src] == 0  # S_+ -> S_0 impossible


class TestNumericSolver:
    def test_simple_two_state_chain(self):
        q = np.array([[0.9, 0.1], [0.3, 0.7]])
        mu = stationary_distribution_numeric(q)
        assert np.allclose(mu, [0.75, 0.25])

    def test_rejects_non_stochastic(self):
        with pytest.raises(ParameterError):
            stationary_distribution_numeric(np.array([[0.5, 0.2], [0.3, 0.7]]))

    def test_rejects_non_square(self):
        with pytest.raises(ParameterError):
            stationary_distribution_numeric(np.ones((2, 3)) / 3)
