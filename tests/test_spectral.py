"""Tests for the spectral toolkit (Section 4 objects)."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.graphs import spectral


class TestWalkMatrices:
    def test_simple_walk_rows_sum_to_one(self, petersen):
        p = spectral.simple_walk_matrix(petersen)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_lazy_walk_definition(self, cycle6):
        lazy = spectral.lazy_walk_matrix(cycle6)
        assert np.allclose(np.diag(lazy), 0.5)
        assert lazy[0, 1] == pytest.approx(0.25)  # 1/(2 d) with d = 2

    def test_lazy_walk_rows_sum_to_one(self, star5):
        lazy = spectral.lazy_walk_matrix(star5)
        assert np.allclose(lazy.sum(axis=1), 1.0)

    def test_lazy_eigenvalues_in_unit_interval(self, small_regular):
        eigenvalues, _ = spectral.walk_spectrum(small_regular)
        assert np.all(eigenvalues >= -1e-12)
        assert np.all(eigenvalues <= 1.0 + 1e-12)

    def test_top_eigenvalue_is_one(self, petersen):
        eigenvalues, _ = spectral.walk_spectrum(petersen)
        assert eigenvalues[0] == pytest.approx(1.0)


class TestStationary:
    def test_pi_proportional_to_degree(self, star5):
        pi = spectral.stationary_distribution(star5)
        degrees = np.array([star5.degree(u) for u in sorted(star5.nodes())], float)
        assert np.allclose(pi, degrees / degrees.sum())

    def test_pi_invariant_under_lazy_walk(self, petersen):
        pi = spectral.stationary_distribution(petersen)
        p = spectral.lazy_walk_matrix(petersen)
        assert np.allclose(pi @ p, pi)

    def test_pi_invariant_under_simple_walk_irregular(self, star5):
        pi = spectral.stationary_distribution(star5)
        p = spectral.simple_walk_matrix(star5)
        assert np.allclose(pi @ p, pi)


class TestSecondEigenpair:
    def test_cycle_lazy_lambda2_closed_form(self):
        # Lazy cycle walk: lambda_2 = (1 + cos(2 pi / n)) / 2.
        n = 12
        lambda2, _ = spectral.second_walk_eigenpair(nx.cycle_graph(n))
        expected = (1.0 + math.cos(2.0 * math.pi / n)) / 2.0
        assert lambda2 == pytest.approx(expected, abs=1e-10)

    def test_complete_lazy_lambda2_closed_form(self):
        # K_n simple walk has lambda_2 = -1/(n-1); lazy: (1 - 1/(n-1))/2.
        n = 8
        lambda2, _ = spectral.second_walk_eigenpair(nx.complete_graph(n))
        expected = (1.0 - 1.0 / (n - 1)) / 2.0
        assert lambda2 == pytest.approx(expected, abs=1e-10)

    def test_f2_is_eigenvector(self, small_regular):
        lambda2, f2 = spectral.second_walk_eigenpair(small_regular)
        p = spectral.lazy_walk_matrix(small_regular)
        assert np.allclose(p @ f2, lambda2 * f2, atol=1e-9)

    def test_f2_pi_normalised_and_orthogonal_to_ones(self, small_regular):
        _, f2 = spectral.second_walk_eigenpair(small_regular)
        pi = spectral.stationary_distribution(small_regular)
        assert spectral.pi_norm_squared(pi, f2) == pytest.approx(1.0)
        assert spectral.pi_inner(pi, np.ones(len(f2)), f2) == pytest.approx(0.0, abs=1e-10)

    def test_eigenvalue_gap_positive_for_connected(self, petersen):
        assert spectral.eigenvalue_gap(petersen) > 0

    def test_f2_eigenvector_irregular(self, star5):
        lambda2, f2 = spectral.second_walk_eigenpair(star5)
        p = spectral.lazy_walk_matrix(star5)
        assert np.allclose(p @ f2, lambda2 * f2, atol=1e-9)


class TestLaplacian:
    def test_laplacian_rows_sum_to_zero(self, petersen):
        laplacian = spectral.laplacian_matrix(petersen)
        assert np.allclose(laplacian.sum(axis=1), 0.0)

    def test_laplacian_psd(self, small_regular):
        eigenvalues, _ = spectral.laplacian_spectrum(small_regular)
        assert eigenvalues[0] == pytest.approx(0.0, abs=1e-10)
        assert np.all(eigenvalues >= -1e-10)

    def test_cycle_lambda2_closed_form(self):
        n = 10
        lambda2, _ = spectral.second_laplacian_eigenpair(nx.cycle_graph(n))
        expected = 2.0 * (1.0 - math.cos(2.0 * math.pi / n))
        assert lambda2 == pytest.approx(expected, abs=1e-10)

    def test_complete_lambda2_is_n(self):
        lambda2, _ = spectral.second_laplacian_eigenpair(nx.complete_graph(7))
        assert lambda2 == pytest.approx(7.0)

    def test_fiedler_vector_is_eigenvector(self, small_regular):
        lambda2, fiedler = spectral.second_laplacian_eigenpair(small_regular)
        laplacian = spectral.laplacian_matrix(small_regular)
        assert np.allclose(laplacian @ fiedler, lambda2 * fiedler, atol=1e-9)

    def test_lambda2_matches_networkx(self, petersen):
        lambda2, _ = spectral.second_laplacian_eigenpair(petersen)
        expected = sorted(nx.laplacian_spectrum(petersen))[1]
        assert lambda2 == pytest.approx(float(expected), abs=1e-8)

    def test_regular_relation_between_gaps(self, petersen):
        # For d-regular graphs, 1 - lambda2(P_lazy) = lambda2(L) / (2d).
        d = 3
        gap = spectral.eigenvalue_gap(petersen)
        lambda2_l, _ = spectral.second_laplacian_eigenpair(petersen)
        assert gap == pytest.approx(lambda2_l / (2 * d), abs=1e-10)


class TestAdjacencyInput:
    def test_accepts_adjacency_objects(self, cycle6, cycle6_adjacency):
        from_graph = spectral.lazy_walk_matrix(cycle6)
        from_adjacency = spectral.lazy_walk_matrix(cycle6_adjacency)
        assert np.allclose(from_graph, from_adjacency)
