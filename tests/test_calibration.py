"""Calibration-table tests: the measured ``kernel="auto"`` regime picker.

Covers the table's own contract (round-trip, nearest-cell lookup,
availability restriction), the process-wide load cache and its
``$REPRO_CALIBRATION`` override, the ``repro bench calibrate`` smoke
measurement, and the autopick layer on top: reasons (``calibrated`` /
``heuristic`` / ``explicit`` / ``fallback``), the obs counters, and
provenance visibility through the declarative API.
"""

import json

import numpy as np
import pytest

from repro.core.initial import center_simple, rademacher_values
from repro.engine import (
    STREAM_EXACT_KERNELS,
    BatchNodeModel,
    autopick_kernel,
    numba_available,
)
from repro.engine.calibration import (
    CALIBRATION_ENV,
    CalibrationCell,
    CalibrationTable,
    calibrate,
    calibration_path,
    clear_calibration_cache,
    load_calibration,
    set_calibration,
)
from repro.exceptions import ParameterError
from repro.graphs.generators import random_regular_graph
from repro.obs import METRICS


@pytest.fixture(autouse=True)
def _clean_cache():
    """Every test starts and ends without a cached table installed."""
    clear_calibration_cache()
    yield
    clear_calibration_cache()


def _table(cells=None):
    return CalibrationTable(
        cells=cells if cells is not None else [
            CalibrationCell(
                kind="node", k=1, n=512, replicas=64,
                rates={"fused": 2.0, "jit": 3.0, "jit-par": 1.0},
            ),
            CalibrationCell(
                kind="node", k=1, n=32768, replicas=1024,
                rates={"fused": 1.0, "jit": 2.0, "jit-par": 5.0},
            ),
            CalibrationCell(
                kind="node", k=2, n=512, replicas=64,
                rates={"fused": 9.0, "jit": 1.0, "jit-par": None},
            ),
            CalibrationCell(
                kind="edge", k=1, n=512, replicas=64,
                rates={"fused": 1.0, "jit": None, "jit-par": None},
            ),
        ],
        machine={"cpu_count": 8},
        source="unit test",
    )


class TestTableContract:
    def test_payload_round_trip(self):
        table = _table()
        clone = CalibrationTable.from_payload(table.to_payload())
        assert clone.cells == table.cells
        assert clone.machine == table.machine
        assert clone.source == table.source

    def test_unknown_schema_rejected(self):
        with pytest.raises(ParameterError):
            CalibrationTable.from_payload({"schema": 999, "cells": []})
        with pytest.raises(ParameterError):
            CalibrationTable.from_payload([1, 2])

    def test_nearest_cell(self):
        table = _table()
        # Exact key hits its own cell.
        cell = table.nearest_cell("node", 1, 512, 64)
        assert (cell.n, cell.replicas) == (512, 64)
        # Log-space distance: a large workload maps to the large cell.
        cell = table.nearest_cell("node", 1, 16384, 2048)
        assert (cell.n, cell.replicas) == (32768, 1024)
        # Same-k cells beat different-k cells at equal shape.
        assert table.nearest_cell("node", 2, 512, 64).k == 2
        # kind never crosses.
        assert table.nearest_cell("edge", 1, 512, 64).kind == "edge"
        assert _table([]).nearest_cell("node", 1, 512, 64) is None

    def test_pick_restricted_to_available(self):
        table = _table()
        # jit is the measured winner of the small cell ...
        assert table.pick(
            "node", 1, 512, 64, ("fused", "jit", "jit-par")
        ) == "jit"
        # ... but an availability-restricted candidate list wins out.
        assert table.pick("node", 1, 512, 64, ("fused",)) == "fused"
        # Null rates are skipped; nothing measured -> None.
        assert table.pick("node", 2, 512, 64, ("jit-par",)) is None
        assert table.pick("edge", 1, 512, 64, ("jit", "jit-par")) is None
        assert _table([]).pick("node", 1, 512, 64, ("fused",)) is None


class TestLoadCache:
    def test_env_override_and_round_trip(self, tmp_path, monkeypatch):
        target = tmp_path / "cal.json"
        monkeypatch.setenv(CALIBRATION_ENV, str(target))
        clear_calibration_cache()
        assert calibration_path() == target
        assert load_calibration() is None  # absent file is not an error
        path = _table().save()
        assert path == target
        loaded = load_calibration()
        assert loaded is not None and len(loaded.cells) == 4

    def test_malformed_file_loads_as_none(self, tmp_path, monkeypatch):
        target = tmp_path / "cal.json"
        target.write_text("{not json")
        monkeypatch.setenv(CALIBRATION_ENV, str(target))
        clear_calibration_cache()
        assert load_calibration() is None

    def test_set_calibration_bypasses_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CALIBRATION_ENV, str(tmp_path / "missing.json"))
        clear_calibration_cache()
        table = _table()
        set_calibration(table)
        assert load_calibration() is table
        set_calibration(None)
        assert load_calibration() is None


class TestCalibrateSmoke:
    def test_smoke_measurement(self, tmp_path, monkeypatch):
        target = tmp_path / "cal.json"
        monkeypatch.setenv(CALIBRATION_ENV, str(target))
        clear_calibration_cache()
        table, path = calibrate(smoke=True, rounds=8, repeats=1)
        assert path == target
        payload = json.loads(target.read_text())
        assert payload["schema"] == 1
        assert {cell.kind for cell in table.cells} == {"node", "edge"}
        for cell in table.cells:
            assert cell.rates["fused"] > 0
            if not numba_available():
                assert cell.rates["jit"] is None
                assert cell.rates["jit-par"] is None
        # The persisted table round-trips into the auto picker: the
        # pick is calibrated, stream-exact and runnable right now.
        pick, reason = autopick_kernel("node", 1, 64, 64)
        assert reason == "calibrated"
        assert pick in STREAM_EXACT_KERNELS
        from repro.engine import available_kernels

        assert pick in available_kernels()

    def test_explicit_out_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CALIBRATION_ENV, str(tmp_path / "default.json"))
        clear_calibration_cache()
        out = tmp_path / "elsewhere.json"
        _, path = calibrate(smoke=True, out=out, rounds=8, repeats=1)
        assert path == out and out.exists()


class TestAutopick:
    def test_heuristic_without_table(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CALIBRATION_ENV, str(tmp_path / "missing.json"))
        clear_calibration_cache()
        pick, reason = autopick_kernel("node", 1, 512, 64)
        assert reason == "heuristic"
        assert pick == ("jit" if numba_available() else "fused")

    def test_calibrated_pick_never_leaves_stream_exact(self):
        # A table that (bogusly) claims numpy and cupy are fastest must
        # still never steer auto off the stream-exact set.
        set_calibration(_table([CalibrationCell(
            kind="node", k=1, n=512, replicas=64,
            rates={"numpy": 99.0, "cupy": 98.0, "fused": 1.0},
        )]))
        pick, reason = autopick_kernel("node", 1, 512, 64)
        assert pick == "fused" if not numba_available() else pick in (
            "fused", "jit", "jit-par"
        )
        assert reason == "calibrated"

    def test_batch_counters_fire_for_auto_only(self):
        graph = random_regular_graph(32, 4, seed=0)
        values = center_simple(rademacher_values(32, seed=1))
        set_calibration(_table())
        baseline = METRICS.snapshot()
        batch = BatchNodeModel(
            graph, values, alpha=0.5, k=1, replicas=2, seed=0, kernel="auto"
        )
        delta = METRICS.delta(baseline)["counters"]
        assert delta.get("engine.kernel_autopick") == 1
        key = f"engine.kernel_autopick.{batch.kernel}.{batch.kernel_reason}"
        assert delta.get(key) == 1
        assert batch.kernel_reason == "calibrated"

        baseline = METRICS.snapshot()
        explicit = BatchNodeModel(
            graph, values, alpha=0.5, k=1, replicas=2, seed=0, kernel="fused"
        )
        assert explicit.kernel_reason == "explicit"
        delta = METRICS.delta(baseline)["counters"]
        assert "engine.kernel_autopick" not in delta

    def test_auto_trajectory_matches_fused(self):
        """Whatever auto picks, the realized trajectory is the fused one."""
        graph = random_regular_graph(32, 4, seed=0)
        values = center_simple(rademacher_values(32, seed=1))
        set_calibration(_table())
        auto = BatchNodeModel(
            graph, values, alpha=0.5, k=1, replicas=4, seed=3, kernel="auto"
        )
        fused = BatchNodeModel(
            graph, values, alpha=0.5, k=1, replicas=4, seed=3, kernel="fused"
        )
        auto.run(300)
        fused.run(300)
        np.testing.assert_array_equal(auto.values, fused.values)


class TestProvenanceVisibility:
    def test_provenance_kernel_reason_and_threads(self):
        from repro.api import Provenance, RunSpec, execute

        result = execute(RunSpec(
            "EXP-T222", preset="fast", kernel="jit-par", threads=2,
            overrides={"replicas": 8, "n": 16},
        ))
        prov = result.provenance
        expected = "jit-par" if numba_available() else "fused"
        assert prov.kernel == expected
        assert prov.kernel_reason == (
            "explicit" if numba_available() else "fallback"
        )
        assert prov.threads >= 1
        clone = Provenance.from_payload(prov.to_payload())
        assert clone.kernel_reason == prov.kernel_reason
        assert clone.threads == prov.threads

    def test_auto_reason_lands_in_provenance(self, tmp_path, monkeypatch):
        from repro.api import RunSpec, execute

        monkeypatch.setenv(CALIBRATION_ENV, str(tmp_path / "missing.json"))
        clear_calibration_cache()
        result = execute(RunSpec(
            "EXP-T222", preset="fast",
            overrides={"replicas": 8, "n": 16},
        ))
        assert result.provenance.kernel_reason == "heuristic"

    def test_autopick_counter_in_telemetry(self):
        from repro.api import RunSpec, execute

        set_calibration(_table())
        result = execute(RunSpec(
            "EXP-T222", preset="fast", trace=True,
            overrides={"replicas": 8, "n": 16},
        ))
        counters = result.telemetry["counters"]
        assert counters.get("engine.kernel_autopick", 0) > 0
