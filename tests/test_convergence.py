"""Tests for eps-convergence detection and T_eps measurement."""

import numpy as np
import pytest

from repro.core.convergence import (
    epsilon_for_discrepancy,
    measure_t_eps,
    run_to_consensus,
)
from repro.core.edge_model import EdgeModel
from repro.core.node_model import NodeModel
from repro.exceptions import ConvergenceError, ParameterError


class TestMeasureTEps:
    def test_returns_zero_when_already_converged(self, triangle):
        process = NodeModel(triangle, [1.0, 1.0, 1.0], alpha=0.5, seed=0)
        assert measure_t_eps(process, 1e-6, 1_000) == 0

    def test_measures_first_crossing(self, small_regular, rng):
        initial = rng.normal(size=10)
        process = NodeModel(small_regular, initial, alpha=0.5, k=1, seed=1)
        t = measure_t_eps(process, 1e-6, 10_000_000)
        assert t > 0
        assert process.phi <= 1e-6

    def test_tight_crossing_not_overshot(self, small_regular, rng):
        # Re-running the same seed step by step must cross at the same t.
        initial = rng.normal(size=10)
        fast = NodeModel(small_regular, initial, alpha=0.5, k=1, seed=5)
        t_fast = measure_t_eps(fast, 1e-6, 10_000_000)
        slow = NodeModel(small_regular, initial, alpha=0.5, k=1, seed=5)
        t_slow = 0
        while slow.phi > 1e-6:
            slow.step()
            t_slow += 1
        # Same generator, but the fast loop consumes randomness in batches;
        # the laws agree but not the sample paths, so compare magnitudes.
        assert 0.2 < t_fast / max(t_slow, 1) < 5.0

    def test_budget_exhaustion_raises(self, cycle6, rng):
        process = NodeModel(cycle6, rng.normal(size=6), alpha=0.5, seed=2)
        with pytest.raises(ConvergenceError):
            measure_t_eps(process, 1e-12, 10)

    def test_epsilon_validation(self, triangle):
        process = NodeModel(triangle, [1.0, 2.0, 3.0], alpha=0.5, seed=0)
        with pytest.raises(ParameterError):
            measure_t_eps(process, 0.0, 100)

    def test_edge_model_supported(self, star5, rng):
        process = EdgeModel(star5, rng.normal(size=6), alpha=0.5, seed=3)
        t = measure_t_eps(process, 1e-8, 10_000_000)
        assert t > 0 and process.phi <= 1e-8


class TestRunToConsensus:
    def test_reaches_tolerance(self, small_regular, rng):
        initial = rng.normal(size=10)
        process = NodeModel(small_regular, initial, alpha=0.5, k=2, seed=4)
        result = run_to_consensus(process, discrepancy_tol=1e-9)
        assert result.residual_discrepancy <= 1e-9
        assert initial.min() <= result.value <= initial.max()

    def test_value_within_hull(self, star5, rng):
        initial = rng.normal(size=6)
        process = EdgeModel(star5, initial, alpha=0.5, seed=5)
        result = run_to_consensus(process, discrepancy_tol=1e-9)
        assert initial.min() - 1e-9 <= result.value <= initial.max() + 1e-9

    def test_budget_exhaustion(self, cycle6, rng):
        process = NodeModel(cycle6, rng.normal(size=6), alpha=0.5, seed=6)
        with pytest.raises(ConvergenceError):
            run_to_consensus(process, discrepancy_tol=1e-12, max_steps=50)

    def test_parameter_validation(self, triangle):
        process = NodeModel(triangle, [1.0, 2.0, 3.0], alpha=0.5, seed=0)
        with pytest.raises(ParameterError):
            run_to_consensus(process, discrepancy_tol=0.0)
        with pytest.raises(ParameterError):
            run_to_consensus(process, check_every=0)

    def test_t_counts_only_new_steps(self, small_regular, rng):
        initial = rng.normal(size=10)
        process = NodeModel(small_regular, initial, alpha=0.5, seed=7)
        process.run(100)
        result = run_to_consensus(process, discrepancy_tol=1e-8)
        assert result.t == process.t - 100


class TestEpsilonForDiscrepancy:
    def test_formula(self):
        assert epsilon_for_discrepancy(10, 0.1) == pytest.approx((0.1 / 10) ** 6)

    def test_validation(self):
        with pytest.raises(ParameterError):
            epsilon_for_discrepancy(10, 0.0)
        with pytest.raises(ParameterError):
            epsilon_for_discrepancy(0, 0.1)

    def test_guarantee_holds_empirically(self, small_regular, rng):
        # Converging to (eps/n)^6 in phi forces discrepancy <= eps.
        initial = rng.normal(size=10)
        # Keep (eps/n)^6 above the float64 noise floor of the potential.
        target_discrepancy = 0.5
        epsilon = epsilon_for_discrepancy(10, target_discrepancy)
        process = NodeModel(small_regular, initial, alpha=0.5, seed=8)
        measure_t_eps(process, epsilon, 50_000_000)
        assert process.discrepancy <= target_discrepancy
