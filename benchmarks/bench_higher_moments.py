"""EXP-MOM — higher moments of F (future work, Section 6)."""

from conftest import run_once
from repro.experiments.exp_higher_moments import run


def test_exp_mom_tables(benchmark, show):
    tables = run_once(benchmark, run, fast=True, seed=0)
    show(tables)
    (table,) = tables
    rows = list(zip(table.column("initial"), table.column("skewness")))
    rademacher_skews = [s for name, s in rows if name == "rademacher"]
    # Symmetric initial values -> near-symmetric F.
    assert max(abs(s) for s in rademacher_skews) < 0.8
