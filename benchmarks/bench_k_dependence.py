"""EXP-T221K — near-independence of T_eps from k (Theorem 2.2(1) detail)."""

from conftest import run_once
from repro.experiments.exp_k_dependence import run


def test_exp_t221k_tables(benchmark, show):
    tables = run_once(benchmark, run, fast=True, seed=0)
    show(tables)
    (table,) = tables
    ratios = table.column("T(k)/T(1)")
    # k varies 8x; T varies by at most ~2x either way (paper: factor <= 2).
    assert 0.3 < min(ratios) and max(ratios) < 1.7
