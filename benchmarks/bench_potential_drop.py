"""EXP-PB1 — one-step potential contraction (Prop B.1 / D.1(ii))."""

from conftest import run_once
from repro.experiments.exp_potential_drop import run


def test_exp_pb1_tables(benchmark, show):
    tables = run_once(benchmark, run, fast=True, seed=0)
    show(tables)
    (table,) = tables
    assert all(table.column("ok"))
