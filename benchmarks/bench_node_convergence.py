"""EXP-T221 — NodeModel T_eps vs Theorem 2.2(1) across graph families.

The extra micro-benchmark measures the simulator's step throughput,
which determines the feasible sweep sizes.
"""

import numpy as np

from conftest import run_once
from repro.core.node_model import NodeModel
from repro.experiments.exp_node_convergence import run
from repro.graphs.generators import random_regular_graph


def test_exp_t221_tables(benchmark, show):
    tables = run_once(benchmark, run, fast=True, seed=0)
    show(tables)
    (table,) = tables
    ratios = table.column("ratio")
    # Theorem 2.2(1): measured/bound stays in an O(1) band across the sweep.
    assert max(ratios) / min(ratios) < 10.0


def test_node_model_step_throughput(benchmark):
    graph = random_regular_graph(256, 4, seed=3)
    initial = np.random.default_rng(3).normal(size=256)
    process = NodeModel(graph, initial, alpha=0.5, k=1, seed=4)
    benchmark(process.run, 10_000)
