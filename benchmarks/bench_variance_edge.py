"""EXP-T242 — EdgeModel Var(F) equals NodeModel(k=1) on regular graphs."""

from conftest import run_once
from repro.experiments.exp_variance_edge import run


def test_exp_t242_tables(benchmark, show):
    tables = run_once(benchmark, run, fast=True, seed=0)
    show(tables)
    (table,) = tables
    variances = table.column("Var_measured")
    # Pairs of rows (edge vs node) per graph should be close.
    for edge_var, node_var in zip(variances[::2], variances[1::2]):
        assert 0.4 < edge_var / node_var < 2.5
