"""EXP-L41 — the martingale structure (Lemma 4.1 / Prop D.1(i))."""

from conftest import run_once
from repro.experiments.exp_martingale import run


def test_exp_l41_tables(benchmark, show):
    tables = run_once(benchmark, run, fast=True, seed=0)
    show(tables)
    exact, empirical = tables
    assert max(exact.column("max_drift")) < 1e-12
    assert max(abs(z) for z in empirical.column("z_score")) < 4.0
