"""EXP-ABL — ablation of the self-weight alpha (speed vs accuracy)."""

from conftest import run_once
from repro.experiments.exp_alpha_ablation import run


def test_exp_abl_tables(benchmark, show):
    tables = run_once(benchmark, run, fast=True, seed=0)
    show(tables)
    (table,) = tables
    alphas = table.column("alpha")
    times = dict(zip(alphas, table.column("T_measured")))
    variances = dict(zip(alphas, table.column("Var_measured")))
    # Speed: both extremes slower than alpha = 0.5.
    assert times[0.5] < times[0.9]
    assert times[0.5] < times[0.1] * 2.0
    # Accuracy: variance decreases with alpha (monotone within MC noise).
    assert variances[0.9] < variances[0.1]
