"""Engine throughput: stepping kernels across batch/size regimes.

Three measurement blocks land in ``BENCH_engine.json`` at the repo root
so the performance trajectory is tracked across PRs:

* **baseline** — the PR-1 acceptance workload (512-node 4-regular graph,
  1k replicas) comparing the legacy per-replica loop against the batch
  engine under every kernel.  Guards both the original >= 10x batch
  advantage and "no kernel regression" at large B.
* **sweep** — the kernel regime grid
  ``n in {512, 4096, 32768} x B in {64, 1024} x {node, node-k2, edge}``
  with
  per-kernel replica-step throughput (``numpy`` = the PR-1 per-round
  path, ``fused`` = multi-round NumPy blocks, ``jit`` = numba, reported
  as null when numba is absent).  The small-B / long-horizon cells are
  where per-round interpreter overhead dominates and the fused kernel
  must hold a >= 5x advantage over the per-round path.
* **dual** — the dual-engine workloads: batch diffusion (``(B, n, r)``
  load replicas), batch correlated walks (``(B, n)`` positions) and
  batch coalescing walks versus the single-replica scalar loop the
  ``repro.dual`` facades expose.  Each must hold a >= 5x replica
  throughput advantage over the loop.

Run standalone or under pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py -q
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py

Set ``REPRO_BENCH_SMOKE=1`` for a seconds-scale smoke run (tiny
workloads, no performance assertions, report written next to a ``.smoke``
suffix) — the CI hook that keeps this script from rotting.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.edge_model import EdgeModel
from repro.core.initial import center_simple, rademacher_values
from repro.core.node_model import NodeModel
from repro.dual.coalescing import CoalescingWalks
from repro.dual.diffusion import DiffusionProcess
from repro.dual.walks import RandomWalkProcess
from repro.engine import (
    BatchCoalescing,
    BatchDiffusion,
    BatchEdgeModel,
    BatchNodeModel,
    BatchWalks,
    numba_available,
)
from repro.graphs.adjacency import Adjacency
from repro.graphs.generators import random_regular_graph

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

DEGREE = 4
ALPHA = 0.5
OUTPUT = Path(__file__).resolve().parents[1] / (
    "BENCH_engine.json.smoke" if SMOKE else "BENCH_engine.json"
)

# Baseline: the PR-1 acceptance workload.
BASE_N = 64 if SMOKE else 512
BASE_REPLICAS = 16 if SMOKE else 1_000
BASE_ROUNDS = 50 if SMOKE else 4_000
LOOP_STEPS = 500 if SMOKE else 400_000

# Sweep grid and per-cell round budgets (rounds shrink as B grows so
# every cell costs a comparable fraction of a second).
SWEEP_NS = (64,) if SMOKE else (512, 4_096, 32_768)
SWEEP_BS = (8,) if SMOKE else (64, 1_024)
SWEEP_ROUNDS = {8: 50, 64: 20_000, 1_024: 3_000}

KERNELS = ("numpy", "fused", "jit")

# Dual workloads: batch diffusion / walks / coalescing vs the scalar loop.
DUAL_N = 32 if SMOKE else 256
DUAL_REPLICAS = 4 if SMOKE else 64
DUAL_ROUNDS = 50 if SMOKE else 2_000
DUAL_LOOP_ROUNDS = 50 if SMOKE else 2_000


def _best_of(repeats, fn):
    """Best wall-clock of ``repeats`` runs (shields against machine noise)."""
    best = np.inf
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _make_batch(kind, adjacency, values, replicas, kernel):
    if kind.startswith("node"):
        k = 2 if kind == "node-k2" else 1
        return BatchNodeModel(
            adjacency, values, alpha=ALPHA, k=k, replicas=replicas, seed=2,
            kernel=kernel,
        )
    return BatchEdgeModel(
        adjacency, values, alpha=ALPHA, replicas=replicas, seed=2,
        kernel=kernel,
    )


def _measure_kernels(kind, adjacency, values, replicas, rounds):
    """Replica-steps/sec per kernel for one (kind, n, B) workload."""
    out = {}
    for kernel in KERNELS:
        if kernel == "jit" and not numba_available():
            out[kernel] = None
            continue
        batch = _make_batch(kind, adjacency, values, replicas, kernel)
        batch.run(min(rounds, 200))  # warm caches, allocator and any JIT
        seconds = _best_of(2, lambda: batch.run(rounds))
        out[kernel] = replicas * rounds / seconds
    return out


def measure_baseline(seed: int = 0) -> dict:
    graph = random_regular_graph(BASE_N, DEGREE, seed=seed)
    adjacency = Adjacency.from_graph(graph)
    values = center_simple(rademacher_values(BASE_N, seed=seed + 1))

    results = {
        "workload": {
            "graph": f"random_regular(n={BASE_N}, d={DEGREE})",
            "replicas": BASE_REPLICAS,
            "steps_per_replica": BASE_ROUNDS,
            "alpha": ALPHA,
            "k": 1,
        }
    }
    for kind in ("node", "edge"):
        kernels = _measure_kernels(
            kind, adjacency, values, BASE_REPLICAS, BASE_ROUNDS
        )
        if kind == "node":
            loop = NodeModel(graph, values, alpha=ALPHA, k=1, seed=3)
        else:
            loop = EdgeModel(graph, values, alpha=ALPHA, seed=3)
        loop.run(min(LOOP_STEPS, 10_000))
        loop_steps_per_sec = LOOP_STEPS / _best_of(2, lambda: loop.run(LOOP_STEPS))
        best = max(v for v in kernels.values() if v is not None)
        results[kind] = {
            "kernels_replica_steps_per_sec": kernels,
            "loop_replica_steps_per_sec": loop_steps_per_sec,
            "speedup_numpy_kernel_vs_loop": kernels["numpy"] / loop_steps_per_sec,
            "speedup_best_kernel_vs_loop": best / loop_steps_per_sec,
            "fused_kernel_vs_numpy_kernel": kernels["fused"] / kernels["numpy"],
        }
    return results


def measure_sweep(seed: int = 0) -> list:
    cells = []
    for n in SWEEP_NS:
        graph = random_regular_graph(n, DEGREE, seed=seed)
        adjacency = Adjacency.from_graph(graph)
        values = center_simple(rademacher_values(n, seed=seed + 1))
        for replicas in SWEEP_BS:
            rounds = SWEEP_ROUNDS[replicas]
            for kind in ("node", "node-k2", "edge"):
                kernels = _measure_kernels(
                    kind, adjacency, values, replicas, rounds
                )
                best = max(v for v in kernels.values() if v is not None)
                cells.append({
                    "kind": kind,
                    "n": n,
                    "replicas": replicas,
                    "rounds": rounds,
                    "alpha": ALPHA,
                    "k": 2 if kind == "node-k2" else 1,
                    "kernels_replica_steps_per_sec": kernels,
                    "fused_vs_numpy": kernels["fused"] / kernels["numpy"],
                    "best_vs_numpy": best / kernels["numpy"],
                })
    return cells


def measure_dual(seed: int = 0) -> dict:
    """Batch dual-process throughput vs the single-replica scalar loop.

    Replica-steps/sec for ``B`` batched replicas against ``B`` sequential
    scalar facades (measured on one and scaled — the loop is linear in
    the replica count by construction).
    """
    graph = random_regular_graph(DUAL_N, DEGREE, seed=seed)
    adjacency = Adjacency.from_graph(graph)
    cost = center_simple(rademacher_values(DUAL_N, seed=seed + 1))
    results = {
        "workload": {
            "graph": f"random_regular(n={DUAL_N}, d={DEGREE})",
            "replicas": DUAL_REPLICAS,
            "steps_per_replica": DUAL_ROUNDS,
            "alpha": ALPHA,
            "k": 1,
        }
    }

    def _cell(batch_fn, loop_fn):
        batch = batch_fn()
        batch.run(min(DUAL_ROUNDS, 100))  # warm allocator and caches
        seconds = _best_of(2, lambda: batch.run(DUAL_ROUNDS))
        batch_rate = DUAL_REPLICAS * DUAL_ROUNDS / seconds
        loop = loop_fn()
        loop_seconds = _best_of(
            2, lambda: [loop.step() for _ in range(DUAL_LOOP_ROUNDS)]
        )
        loop_rate = DUAL_LOOP_ROUNDS / loop_seconds
        return {
            "batch_replica_steps_per_sec": batch_rate,
            "loop_replica_steps_per_sec": loop_rate,
            "speedup_batch_vs_loop": batch_rate / loop_rate,
        }

    results["diffusion"] = _cell(
        lambda: BatchDiffusion(
            adjacency, cost=cost, alpha=ALPHA, k=1,
            replicas=DUAL_REPLICAS, seed=2,
        ),
        lambda: DiffusionProcess(adjacency, cost=cost, alpha=ALPHA, k=1, seed=3),
    )
    results["walks"] = _cell(
        lambda: BatchWalks(
            adjacency, cost=cost, alpha=ALPHA, k=1,
            replicas=DUAL_REPLICAS, seed=2,
        ),
        lambda: RandomWalkProcess(adjacency, cost=cost, alpha=ALPHA, k=1, seed=3),
    )
    results["coalescing"] = _cell(
        lambda: BatchCoalescing(
            adjacency, alpha=0.5, replicas=DUAL_REPLICAS, seed=2,
            track_positions=False,
        ),
        lambda: CoalescingWalks(adjacency, alpha=0.5, seed=3),
    )
    return results


def write_report(baseline: dict, sweep: list, dual: dict) -> dict:
    report = {
        "schema": 3,
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "numba": numba_available(),
            "platform": platform.platform(),
        },
        "baseline": baseline,
        "sweep": sweep,
        "dual": dual,
        "notes": [
            "kernels_replica_steps_per_sec: numpy = PR-1 per-round batch "
            "path, fused = multi-round NumPy blocks, jit = numba "
            "(null when numba is not installed)",
            "small-B cells (replicas=64) are the long-horizon regime "
            "where per-round interpreter overhead dominates",
            "dual: batch diffusion/walks/coalescing (repro.engine.dual) "
            "vs the single-replica scalar facade loop",
        ],
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_engine_throughput_regimes():
    """Baseline stays fast; fused wins small-B; dual engine beats the loop."""
    baseline = measure_baseline()
    sweep = measure_sweep()
    dual = measure_dual()
    write_report(baseline, sweep, dual)

    for cell in sweep:
        ks = cell["kernels_replica_steps_per_sec"]
        print(
            f"{cell['kind']:4s} n={cell['n']:>6} B={cell['replicas']:>5}: "
            f"numpy {ks['numpy'] / 1e6:6.1f} M/s, "
            f"fused {ks['fused'] / 1e6:6.1f} M/s "
            f"({cell['fused_vs_numpy']:.2f}x), best {cell['best_vs_numpy']:.2f}x"
        )
    if SMOKE:
        return  # exercised end to end; no timing assertions on tiny runs

    node = baseline["node"]
    edge = baseline["edge"]
    # PR-1 floors: the batch engine's per-round path keeps its lead ...
    assert node["speedup_numpy_kernel_vs_loop"] >= 10.0
    assert edge["speedup_numpy_kernel_vs_loop"] >= 4.0
    # ... and the default block kernel does not regress the n=512 /
    # B=1000 acceptance workload (0.9 absorbs machine noise between the
    # two measurements; 'best' would be tautological, it includes numpy).
    assert node["fused_kernel_vs_numpy_kernel"] >= 0.9
    assert edge["fused_kernel_vs_numpy_kernel"] >= 0.9
    # PR-3 tentpole: >= 5x over the PR-1 batch path somewhere in the
    # small-B / long-horizon regime.
    small_b = [c["best_vs_numpy"] for c in sweep if c["replicas"] == 64]
    assert max(small_b) >= 5.0, f"small-B speedups: {small_b}"
    # Dual-engine tentpole: batch diffusion and walks (and coalescing)
    # hold >= 5x replica throughput over the scalar facade loop.
    for kind in ("diffusion", "walks", "coalescing"):
        speedup = dual[kind]["speedup_batch_vs_loop"]
        assert speedup >= 5.0, f"dual {kind} speedup: {speedup:.2f}"


if __name__ == "__main__":
    report = write_report(measure_baseline(), measure_sweep(), measure_dual())
    print(json.dumps(report, indent=2))
    print(f"wrote -> {OUTPUT}")
