"""Engine throughput: batch `(B, n)` engine vs legacy per-replica loop.

The acceptance workload of the engine subsystem: a 512-node 4-regular
graph carrying 1k replicas.  Both engines push the same number of
replica-steps; we report steps/sec and the wall-clock each engine needs
per 1k replicas of that workload (the loop engine's cost is linear in
replicas, so its measured single-chain throughput converts exactly).

Results land in ``BENCH_engine.json`` at the repo root so the
performance trajectory is tracked across PRs.  Run standalone::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py -q
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.edge_model import EdgeModel
from repro.core.initial import center_simple, rademacher_values
from repro.core.node_model import NodeModel
from repro.engine import BatchEdgeModel, BatchNodeModel
from repro.graphs.generators import random_regular_graph

N = 512
DEGREE = 4
REPLICAS = 1_000
BATCH_ROUNDS = 4_000          # replica-steps: REPLICAS * BATCH_ROUNDS
LOOP_STEPS = 400_000          # same per-chain step scale, one chain
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def _best_of(repeats, fn):
    """Best wall-clock of ``repeats`` runs (shields against machine noise)."""
    best = np.inf
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def measure(seed: int = 0) -> dict:
    graph = random_regular_graph(N, DEGREE, seed=seed)
    values = center_simple(rademacher_values(N, seed=seed + 1))

    results = {}
    for kind in ("node", "edge"):
        if kind == "node":
            batch = BatchNodeModel(
                graph, values, alpha=0.5, k=1, replicas=REPLICAS, seed=2
            )
            loop = NodeModel(graph, values, alpha=0.5, k=1, seed=3)
        else:
            batch = BatchEdgeModel(
                graph, values, alpha=0.5, replicas=REPLICAS, seed=2
            )
            loop = EdgeModel(graph, values, alpha=0.5, seed=3)

        batch.run(200)  # warm caches and allocator
        batch_seconds = _best_of(2, lambda: batch.run(BATCH_ROUNDS))
        batch_steps_per_sec = REPLICAS * BATCH_ROUNDS / batch_seconds

        loop.run(10_000)
        loop_seconds = _best_of(2, lambda: loop.run(LOOP_STEPS))
        loop_steps_per_sec = LOOP_STEPS / loop_seconds

        workload = REPLICAS * BATCH_ROUNDS  # replica-steps per 1k replicas
        results[kind] = {
            "batch_replica_steps_per_sec": batch_steps_per_sec,
            "loop_replica_steps_per_sec": loop_steps_per_sec,
            "speedup": batch_steps_per_sec / loop_steps_per_sec,
            "wall_clock_per_1k_replicas_batch_s": workload / batch_steps_per_sec,
            "wall_clock_per_1k_replicas_loop_s": workload / loop_steps_per_sec,
        }
    return results


def write_report(results: dict) -> dict:
    report = {
        "workload": {
            "graph": f"random_regular(n={N}, d={DEGREE})",
            "replicas": REPLICAS,
            "steps_per_replica": BATCH_ROUNDS,
            "alpha": 0.5,
            "k": 1,
        },
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "results": results,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_engine_throughput_speedup():
    """The batch engine must hold a >= 10x replica-throughput advantage."""
    results = write_report(measure())
    node = results["results"]["node"]
    edge = results["results"]["edge"]
    print(
        f"\nnode: batch {node['batch_replica_steps_per_sec'] / 1e6:.1f} M/s, "
        f"loop {node['loop_replica_steps_per_sec'] / 1e6:.2f} M/s, "
        f"speedup {node['speedup']:.1f}x"
    )
    print(
        f"edge: batch {edge['batch_replica_steps_per_sec'] / 1e6:.1f} M/s, "
        f"loop {edge['loop_replica_steps_per_sec'] / 1e6:.2f} M/s, "
        f"speedup {edge['speedup']:.1f}x"
    )
    assert node["speedup"] >= 10.0
    # The edge loop's inner loop is leaner; demand a solid floor there too.
    assert edge["speedup"] >= 4.0


if __name__ == "__main__":
    report = write_report(measure())
    print(json.dumps(report, indent=2))
    print(f"wrote -> {OUTPUT}")
