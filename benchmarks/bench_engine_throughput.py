"""Engine throughput: stepping kernels across batch/size regimes.

Measurements flow through the ``repro.obs`` layer instead of hand-rolled
timers: each workload runs under its own :class:`~repro.obs.Tracer`
(span clock for wall time) and the executed replica-step count comes
from the :data:`~repro.obs.METRICS` registry delta, so the benchmark
reports the work the engine actually did rather than the work the
script assumed it would do.

Seven measurement blocks land in ``BENCH_engine.json`` (schema 5) at
the repo root so the performance trajectory is tracked across PRs:

* **baseline** — the PR-1 acceptance workload (512-node 4-regular graph,
  1k replicas) comparing the legacy per-replica loop against the batch
  engine under every kernel.  Guards both the original >= 10x batch
  advantage and "no kernel regression" at large B.
* **sweep** — the kernel regime grid
  ``n in {512, 4096, 32768} x B in {64, 1024} x {node, node-k2, edge}``
  with
  per-kernel replica-step throughput (``numpy`` = the PR-1 per-round
  path, ``fused`` = multi-round NumPy blocks, ``jit`` / ``jit-par`` =
  numba serial/threaded, reported as null when numba is absent,
  ``cupy`` = the array-API backend, shim-backed without CuPy).  The
  small-B / long-horizon cells are where per-round interpreter overhead
  dominates and the fused kernel must hold a >= 5x advantage over the
  per-round path.
* **backends** — the fused host kernel against the array-API backend at
  one mid-sized shape, labelled with the namespace that actually backed
  it (``cupy`` on a GPU runner, ``numpy-shim`` here) and whether the
  final state matched fused bit-for-bit (always true under the shim;
  statistical parity only on a real device).
* **threads** — the ``jit-par`` thread-scaling curve
  (``threads in {1, 2, cpu_count}``), rates null without numba, each
  point carrying the *effective* thread count after capping.
* **calibration** — a :class:`~repro.engine.calibration.CalibrationTable`
  derived from the sweep block's measured rates, plus what
  ``kernel="auto"`` picks per cell with that table installed.  The
  recorded pick must never be slower than fused (the acceptance gate).
* **dual** — the dual-engine workloads: batch diffusion (``(B, n, r)``
  load replicas), batch correlated walks (``(B, n)`` positions) and
  batch coalescing walks versus the single-replica scalar loop the
  ``repro.dual`` facades expose.  Each must hold a >= 5x replica
  throughput advantage over the loop.
* **telemetry** — a traced :func:`~repro.engine.sample_t_eps_batch` run
  of the baseline workload, summarised into a per-phase time breakdown
  (span self-times), engine counters, peak state bytes and shard
  balance.  This is the profile the throughput numbers above should be
  read against.

Run standalone or under pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py -q
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py

Set ``REPRO_BENCH_SMOKE=1`` for a seconds-scale smoke run (tiny
workloads, no performance assertions, report written next to a ``.smoke``
suffix) — the CI hook that keeps this script from rotting.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import numpy as np

from repro.core.edge_model import EdgeModel
from repro.core.initial import center_simple, rademacher_values
from repro.core.node_model import NodeModel
from repro.dual.coalescing import CoalescingWalks
from repro.dual.diffusion import DiffusionProcess
from repro.dual.walks import RandomWalkProcess
from repro.engine import (
    STREAM_EXACT_KERNELS,
    BatchCoalescing,
    BatchDiffusion,
    BatchEdgeModel,
    BatchNodeModel,
    BatchWalks,
    EngineSpec,
    autopick_kernel,
    cupy_available,
    effective_thread_count,
    numba_available,
    sample_t_eps_batch,
)
from repro.engine.calibration import (
    CalibrationCell,
    CalibrationTable,
    clear_calibration_cache,
    set_calibration,
)
from repro.engine.kernels import array_namespace
from repro.graphs.adjacency import Adjacency
from repro.graphs.generators import random_regular_graph
from repro.obs import METRICS, Tracer, activate, build_telemetry, summarize

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

DEGREE = 4
ALPHA = 0.5
OUTPUT = Path(__file__).resolve().parents[1] / (
    "BENCH_engine.json.smoke" if SMOKE else "BENCH_engine.json"
)

# Baseline: the PR-1 acceptance workload.
BASE_N = 64 if SMOKE else 512
BASE_REPLICAS = 16 if SMOKE else 1_000
BASE_ROUNDS = 50 if SMOKE else 4_000
LOOP_STEPS = 500 if SMOKE else 400_000

# Sweep grid and per-cell round budgets (rounds shrink as B grows so
# every cell costs a comparable fraction of a second).
SWEEP_NS = (64,) if SMOKE else (512, 4_096, 32_768)
SWEEP_BS = (8,) if SMOKE else (64, 1_024)
SWEEP_ROUNDS = {8: 50, 64: 20_000, 1_024: 3_000}

KERNELS = ("numpy", "fused", "jit", "jit-par", "cupy")

# Backend comparison: fused host blocks vs the array-API backend.
BACKEND_N = 64 if SMOKE else 1_024
BACKEND_B = 8 if SMOKE else 256
BACKEND_ROUNDS = 50 if SMOKE else 2_000

# jit-par thread-scaling curve (rates null without numba).
THREADS_N = 64 if SMOKE else 4_096
THREADS_B = 8 if SMOKE else 256
THREADS_ROUNDS = 50 if SMOKE else 4_000

# Dual workloads: batch diffusion / walks / coalescing vs the scalar loop.
DUAL_N = 32 if SMOKE else 256
DUAL_REPLICAS = 4 if SMOKE else 64
DUAL_ROUNDS = 50 if SMOKE else 2_000
DUAL_LOOP_ROUNDS = 50 if SMOKE else 2_000

# Telemetry profile: a sharded sample_t_eps_batch over the baseline graph.
TELEM_REPLICAS = 16 if SMOKE else 512
TELEM_SHARD = 8 if SMOKE else 128
TELEM_EPS = 1e-2 if SMOKE else 1e-4
TELEM_MAX_STEPS = 50_000 if SMOKE else 5_000_000


def _obs_run(fn):
    """``(seconds, counter_delta)`` for one ``fn()`` call, via the obs layer.

    The span clock supplies the wall time and the metric registry delta
    the executed work, replacing the hand-rolled ``perf_counter`` pairs
    earlier revisions of this benchmark carried.
    """
    baseline = METRICS.snapshot()
    tracer = Tracer()
    with activate(tracer), tracer.span("bench.workload"):
        fn()
    span = tracer.find("bench.workload")[0]
    return span.duration, METRICS.delta(baseline)["counters"]


def _best_rate(repeats, fn, fallback_steps):
    """Best replica-steps/sec of ``repeats`` runs (shields machine noise).

    The step count comes from the ``engine.replica_steps`` counter when
    the workload is instrumented (every batch averaging model is); the
    dual-process batches and scalar loop facades fall back to the
    analytic count.
    """
    best = 0.0
    for _ in range(repeats):
        seconds, counters = _obs_run(fn)
        steps = counters.get("engine.replica_steps", fallback_steps)
        best = max(best, steps / seconds)
    return best


def _make_batch(kind, adjacency, values, replicas, kernel):
    if kind.startswith("node"):
        k = 2 if kind == "node-k2" else 1
        return BatchNodeModel(
            adjacency, values, alpha=ALPHA, k=k, replicas=replicas, seed=2,
            kernel=kernel,
        )
    return BatchEdgeModel(
        adjacency, values, alpha=ALPHA, replicas=replicas, seed=2,
        kernel=kernel,
    )


def _measure_kernels(kind, adjacency, values, replicas, rounds):
    """Replica-steps/sec per kernel for one (kind, n, B) workload."""
    out = {}
    for kernel in KERNELS:
        if kernel in ("jit", "jit-par") and not numba_available():
            out[kernel] = None
            continue
        batch = _make_batch(kind, adjacency, values, replicas, kernel)
        batch.run(min(rounds, 200))  # warm caches, allocator and any JIT
        out[kernel] = _best_rate(
            2, lambda: batch.run(rounds), replicas * rounds
        )
    return out


def measure_baseline(seed: int = 0) -> dict:
    graph = random_regular_graph(BASE_N, DEGREE, seed=seed)
    adjacency = Adjacency.from_graph(graph)
    values = center_simple(rademacher_values(BASE_N, seed=seed + 1))

    results = {
        "workload": {
            "graph": f"random_regular(n={BASE_N}, d={DEGREE})",
            "replicas": BASE_REPLICAS,
            "steps_per_replica": BASE_ROUNDS,
            "alpha": ALPHA,
            "k": 1,
        }
    }
    for kind in ("node", "edge"):
        kernels = _measure_kernels(
            kind, adjacency, values, BASE_REPLICAS, BASE_ROUNDS
        )
        if kind == "node":
            loop = NodeModel(graph, values, alpha=ALPHA, k=1, seed=3)
        else:
            loop = EdgeModel(graph, values, alpha=ALPHA, seed=3)
        loop.run(min(LOOP_STEPS, 10_000))
        loop_steps_per_sec = _best_rate(
            2, lambda: loop.run(LOOP_STEPS), LOOP_STEPS
        )
        best = max(v for v in kernels.values() if v is not None)
        results[kind] = {
            "kernels_replica_steps_per_sec": kernels,
            "loop_replica_steps_per_sec": loop_steps_per_sec,
            "speedup_numpy_kernel_vs_loop": kernels["numpy"] / loop_steps_per_sec,
            "speedup_best_kernel_vs_loop": best / loop_steps_per_sec,
            "fused_kernel_vs_numpy_kernel": kernels["fused"] / kernels["numpy"],
        }
    return results


def measure_sweep(seed: int = 0) -> list:
    cells = []
    for n in SWEEP_NS:
        graph = random_regular_graph(n, DEGREE, seed=seed)
        adjacency = Adjacency.from_graph(graph)
        values = center_simple(rademacher_values(n, seed=seed + 1))
        for replicas in SWEEP_BS:
            rounds = SWEEP_ROUNDS[replicas]
            for kind in ("node", "node-k2", "edge"):
                kernels = _measure_kernels(
                    kind, adjacency, values, replicas, rounds
                )
                best = max(v for v in kernels.values() if v is not None)
                cells.append({
                    "kind": kind,
                    "n": n,
                    "replicas": replicas,
                    "rounds": rounds,
                    "alpha": ALPHA,
                    "k": 2 if kind == "node-k2" else 1,
                    "kernels_replica_steps_per_sec": kernels,
                    "fused_vs_numpy": kernels["fused"] / kernels["numpy"],
                    "best_vs_numpy": best / kernels["numpy"],
                })
    return cells


def measure_backends(seed: int = 0) -> dict:
    """Fused host blocks vs the array-API backend at one shape.

    On this runner the backend resolves to the NumPy shim (no CuPy), so
    the final state must match fused bit-for-bit; on a GPU runner the
    contract weakens to statistical parity and ``bit_identical_to_fused``
    records whatever actually held.
    """
    graph = random_regular_graph(BACKEND_N, DEGREE, seed=seed)
    adjacency = Adjacency.from_graph(graph)
    values = center_simple(rademacher_values(BACKEND_N, seed=seed + 1))
    _, device = array_namespace()
    rates, states = {}, {}
    for kernel in ("fused", "cupy"):
        batch = _make_batch("node", adjacency, values, BACKEND_B, kernel)
        batch.run(min(BACKEND_ROUNDS, 200))
        rates[kernel] = _best_rate(
            2, lambda b=batch: b.run(BACKEND_ROUNDS), BACKEND_B * BACKEND_ROUNDS
        )
        check = _make_batch("node", adjacency, values, BACKEND_B, kernel)
        check.run(BACKEND_ROUNDS)
        states[kernel] = check.values.copy()
    return {
        "workload": {
            "graph": f"random_regular(n={BACKEND_N}, d={DEGREE})",
            "replicas": BACKEND_B,
            "steps_per_replica": BACKEND_ROUNDS,
            "kind": "node",
            "k": 1,
        },
        "device": device,
        "cupy_installed": cupy_available(),
        "kernels_replica_steps_per_sec": rates,
        "cupy_vs_fused": rates["cupy"] / rates["fused"],
        "bit_identical_to_fused": bool(
            np.array_equal(states["cupy"], states["fused"])
        ),
    }


def measure_threads(seed: int = 0) -> dict:
    """The jit-par thread-scaling curve (rates null without numba)."""
    counts = sorted({1, 2, os.cpu_count() or 1})
    graph = random_regular_graph(THREADS_N, DEGREE, seed=seed)
    adjacency = Adjacency.from_graph(graph)
    values = center_simple(rademacher_values(THREADS_N, seed=seed + 1))
    curve = []
    for threads in counts:
        point = {
            "threads": threads,
            "effective_threads": effective_thread_count(threads),
            "replica_steps_per_sec": None,
        }
        if numba_available():
            batch = BatchNodeModel(
                adjacency, values, alpha=ALPHA, k=1, replicas=THREADS_B,
                seed=2, kernel="jit-par", threads=threads,
            )
            batch.run(min(THREADS_ROUNDS, 200))
            point["replica_steps_per_sec"] = _best_rate(
                2, lambda b=batch: b.run(THREADS_ROUNDS),
                THREADS_B * THREADS_ROUNDS,
            )
        curve.append(point)
    return {
        "workload": {
            "graph": f"random_regular(n={THREADS_N}, d={DEGREE})",
            "replicas": THREADS_B,
            "steps_per_replica": THREADS_ROUNDS,
            "kernel": "jit-par",
        },
        "cpu_count": os.cpu_count(),
        "numba": numba_available(),
        "curve": curve,
    }


def derive_calibration(sweep: list) -> dict:
    """Calibration table from the sweep rates + the auto picks it drives.

    Installs the derived table for this process (without touching the
    user's persisted one), records what ``kernel="auto"`` would resolve
    per sweep cell and how the pick's measured rate compares to fused.
    The benchmark asserts ``picked_vs_fused >= 1`` — auto must never
    select slower-than-fused in its own recorded sweep.
    """
    cells = [
        CalibrationCell(
            kind="edge" if c["kind"] == "edge" else "node",
            k=c["k"],
            n=c["n"],
            replicas=c["replicas"],
            rates=dict(c["kernels_replica_steps_per_sec"]),
        )
        for c in sweep
    ]
    table = CalibrationTable(
        cells=cells,
        machine={"cpu_count": os.cpu_count(), "numba": numba_available()},
        source="bench_engine_throughput sweep",
    )
    set_calibration(table)
    try:
        picks = []
        for c, cell in zip(sweep, cells):
            pick, reason = autopick_kernel(
                cell.kind, cell.k, cell.n, cell.replicas
            )
            fused = cell.rates.get("fused")
            rate = cell.rates.get(pick)
            picks.append({
                "kind": c["kind"],
                "k": cell.k,
                "n": cell.n,
                "replicas": cell.replicas,
                "picked": pick,
                "reason": reason,
                "picked_vs_fused": (
                    rate / fused if rate and fused else None
                ),
            })
    finally:
        set_calibration(None)
        clear_calibration_cache()
    return {"table": table.to_payload(), "auto_picks": picks}


def measure_dual(seed: int = 0) -> dict:
    """Batch dual-process throughput vs the single-replica scalar loop.

    Replica-steps/sec for ``B`` batched replicas against ``B`` sequential
    scalar facades (measured on one and scaled — the loop is linear in
    the replica count by construction).
    """
    graph = random_regular_graph(DUAL_N, DEGREE, seed=seed)
    adjacency = Adjacency.from_graph(graph)
    cost = center_simple(rademacher_values(DUAL_N, seed=seed + 1))
    results = {
        "workload": {
            "graph": f"random_regular(n={DUAL_N}, d={DEGREE})",
            "replicas": DUAL_REPLICAS,
            "steps_per_replica": DUAL_ROUNDS,
            "alpha": ALPHA,
            "k": 1,
        }
    }

    def _cell(batch_fn, loop_fn):
        batch = batch_fn()
        batch.run(min(DUAL_ROUNDS, 100))  # warm allocator and caches
        batch_rate = _best_rate(
            2, lambda: batch.run(DUAL_ROUNDS), DUAL_REPLICAS * DUAL_ROUNDS
        )
        loop = loop_fn()
        loop_rate = _best_rate(
            2,
            lambda: [loop.step() for _ in range(DUAL_LOOP_ROUNDS)],
            DUAL_LOOP_ROUNDS,
        )
        return {
            "batch_replica_steps_per_sec": batch_rate,
            "loop_replica_steps_per_sec": loop_rate,
            "speedup_batch_vs_loop": batch_rate / loop_rate,
        }

    results["diffusion"] = _cell(
        lambda: BatchDiffusion(
            adjacency, cost=cost, alpha=ALPHA, k=1,
            replicas=DUAL_REPLICAS, seed=2,
        ),
        lambda: DiffusionProcess(adjacency, cost=cost, alpha=ALPHA, k=1, seed=3),
    )
    results["walks"] = _cell(
        lambda: BatchWalks(
            adjacency, cost=cost, alpha=ALPHA, k=1,
            replicas=DUAL_REPLICAS, seed=2,
        ),
        lambda: RandomWalkProcess(adjacency, cost=cost, alpha=ALPHA, k=1, seed=3),
    )
    results["coalescing"] = _cell(
        lambda: BatchCoalescing(
            adjacency, alpha=0.5, replicas=DUAL_REPLICAS, seed=2,
            track_positions=False,
        ),
        lambda: CoalescingWalks(adjacency, alpha=0.5, seed=3),
    )
    return results


def measure_telemetry(seed: int = 0) -> dict:
    """Per-phase profile of the baseline workload (the schema-4 block).

    Runs a sharded :func:`~repro.engine.sample_t_eps_batch` over the
    baseline graph under an enabled tracer and condenses the result via
    :func:`~repro.obs.summarize`: where the wall time goes (span self
    times), how many blocks each kernel dispatched, peak state bytes and
    the shard balance.
    """
    graph = random_regular_graph(BASE_N, DEGREE, seed=seed)
    adjacency = Adjacency.from_graph(graph)
    values = center_simple(rademacher_values(BASE_N, seed=seed + 1))
    spec = EngineSpec(
        kind="node", adjacency=adjacency, initial_values=values,
        alpha=ALPHA, k=1, kernel="fused",
    )
    baseline = METRICS.snapshot()
    tracer = Tracer()
    with activate(tracer):
        sample_t_eps_batch(
            spec,
            epsilon=TELEM_EPS,
            replicas=TELEM_REPLICAS,
            seed=seed + 2,
            max_steps=TELEM_MAX_STEPS,
            shard_size=TELEM_SHARD,
        )
    summary = summarize(build_telemetry(tracer, METRICS.delta(baseline)))
    shards = summary["shards"]
    return {
        "workload": {
            "entry": "sample_t_eps_batch",
            "graph": f"random_regular(n={BASE_N}, d={DEGREE})",
            "replicas": TELEM_REPLICAS,
            "shard_size": TELEM_SHARD,
            "epsilon": TELEM_EPS,
            "kernel": "fused",
        },
        "wall_s": summary["wall_s"],
        "phases": summary["top_spans"],
        "counters": summary["counters"],
        "peaks": summary["peaks"],
        "shards": (
            None
            if shards is None
            else {key: value for key, value in shards.items() if key != "rows"}
        ),
    }


def write_report(
    baseline: dict,
    sweep: list,
    backends: dict,
    threads: dict,
    calibration: dict,
    dual: dict,
    telemetry: dict,
) -> dict:
    report = {
        "schema": 5,
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "numba": numba_available(),
            "cupy": cupy_available(),
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
        "baseline": baseline,
        "sweep": sweep,
        "backends": backends,
        "threads": threads,
        "calibration": calibration,
        "dual": dual,
        "telemetry": telemetry,
        "notes": [
            "kernels_replica_steps_per_sec: numpy = PR-1 per-round batch "
            "path, fused = multi-round NumPy blocks, jit/jit-par = numba "
            "serial/threaded (null when numba is not installed), cupy = "
            "array-API backend (NumPy shim when CuPy is absent)",
            "threads: jit-par scaling curve; effective_threads is the "
            "post-cap count provenance records",
            "calibration: table derived from the sweep rates; auto_picks "
            "is what kernel='auto' resolves per cell with that table "
            "installed and must never be slower than fused",
            "small-B cells (replicas=64) are the long-horizon regime "
            "where per-round interpreter overhead dominates",
            "dual: batch diffusion/walks/coalescing (repro.engine.dual) "
            "vs the single-replica scalar facade loop",
            "timings via repro.obs (span clock + engine.replica_steps "
            "counter delta); telemetry = traced sample_t_eps_batch "
            "profile of the baseline workload, phases sorted by span "
            "self time",
        ],
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_engine_throughput_regimes():
    """Baseline stays fast; fused wins small-B; dual engine beats the loop."""
    baseline = measure_baseline()
    sweep = measure_sweep()
    backends = measure_backends()
    threads = measure_threads()
    calibration = derive_calibration(sweep)
    dual = measure_dual()
    telemetry = measure_telemetry()
    write_report(
        baseline, sweep, backends, threads, calibration, dual, telemetry
    )

    # Schema-5 structural gates (asserted in smoke mode too).
    # jit columns must be measured whenever numba imports (CI satellite).
    if numba_available():
        for cell in sweep:
            ks = cell["kernels_replica_steps_per_sec"]
            assert ks["jit"] is not None and ks["jit-par"] is not None
        assert all(
            p["replica_steps_per_sec"] is not None
            for p in threads["curve"]
        )
    # The array-API backend always runs (shim without CuPy) and the shim
    # must be bit-identical to fused.
    assert backends["kernels_replica_steps_per_sec"]["cupy"] is not None
    if not cupy_available():
        assert backends["device"] == "numpy-shim"
        assert backends["bit_identical_to_fused"]
    # kernel="auto" under the derived table: stream-exact picks only,
    # from the calibration table, never slower than fused.
    assert calibration["auto_picks"]
    for pick in calibration["auto_picks"]:
        assert pick["picked"] in STREAM_EXACT_KERNELS
        assert pick["reason"] == "calibrated"
        assert pick["picked_vs_fused"] is not None
        assert pick["picked_vs_fused"] >= 0.999, pick

    for cell in sweep:
        ks = cell["kernels_replica_steps_per_sec"]
        print(
            f"{cell['kind']:4s} n={cell['n']:>6} B={cell['replicas']:>5}: "
            f"numpy {ks['numpy'] / 1e6:6.1f} M/s, "
            f"fused {ks['fused'] / 1e6:6.1f} M/s "
            f"({cell['fused_vs_numpy']:.2f}x), best {cell['best_vs_numpy']:.2f}x"
        )
    # The telemetry block is structural (no timing floors): the traced
    # profile must carry phases, engine counters and the fused dispatch
    # count — asserted in smoke mode too, this is what CI actually pins.
    assert telemetry["phases"], "traced profile produced no spans"
    assert telemetry["counters"].get("engine.replica_steps", 0) > 0
    assert telemetry["counters"].get("engine.blocks.fused", 0) > 0
    assert telemetry["shards"] is not None and telemetry["shards"]["count"] >= 2
    if SMOKE:
        return  # exercised end to end; no timing assertions on tiny runs

    node = baseline["node"]
    edge = baseline["edge"]
    # PR-1 floors: the batch engine's per-round path keeps its lead ...
    assert node["speedup_numpy_kernel_vs_loop"] >= 10.0
    assert edge["speedup_numpy_kernel_vs_loop"] >= 4.0
    # ... and the default block kernel does not regress the n=512 /
    # B=1000 acceptance workload (0.9 absorbs machine noise between the
    # two measurements; 'best' would be tautological, it includes numpy).
    assert node["fused_kernel_vs_numpy_kernel"] >= 0.9
    assert edge["fused_kernel_vs_numpy_kernel"] >= 0.9
    # PR-3 tentpole: >= 5x over the PR-1 batch path somewhere in the
    # small-B / long-horizon regime.
    small_b = [c["best_vs_numpy"] for c in sweep if c["replicas"] == 64]
    assert max(small_b) >= 5.0, f"small-B speedups: {small_b}"
    # Dual-engine tentpole: batch diffusion and walks (and coalescing)
    # hold >= 5x replica throughput over the scalar facade loop.
    for kind in ("diffusion", "walks", "coalescing"):
        speedup = dual[kind]["speedup_batch_vs_loop"]
        assert speedup >= 5.0, f"dual {kind} speedup: {speedup:.2f}"


if __name__ == "__main__":
    sweep = measure_sweep()
    report = write_report(
        measure_baseline(), sweep, measure_backends(), measure_threads(),
        derive_calibration(sweep), measure_dual(), measure_telemetry(),
    )
    print(json.dumps(report, indent=2))
    print(f"wrote -> {OUTPUT}")
