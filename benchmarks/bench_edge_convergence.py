"""EXP-T241 — EdgeModel T_eps vs Theorem 2.4(1), incl. irregular graphs."""

import numpy as np

from conftest import run_once
from repro.core.edge_model import EdgeModel
from repro.experiments.exp_edge_convergence import run
from repro.graphs.generators import barbell_graph


def test_exp_t241_tables(benchmark, show):
    tables = run_once(benchmark, run, fast=True, seed=0)
    show(tables)
    (table,) = tables
    ratios = table.column("ratio")
    assert max(ratios) / min(ratios) < 20.0


def test_edge_model_step_throughput(benchmark):
    graph = barbell_graph(128)
    initial = np.random.default_rng(5).normal(size=128)
    process = EdgeModel(graph, initial, alpha=0.5, seed=6)
    benchmark(process.run, 10_000)
