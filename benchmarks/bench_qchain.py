"""EXP-L57 — Lemma 5.7 closed form vs numeric stationary distribution.

The micro-benchmark times the Q-chain construction + numeric solve on
the Petersen graph (a 100-state chain), the kernel behind the table.
"""

from conftest import run_once
from repro.dual.qchain import QChain
from repro.experiments.exp_qchain import run
from repro.graphs.generators import petersen_graph


def test_exp_l57_tables(benchmark, show):
    tables = run_once(benchmark, run, fast=True, seed=0)
    show(tables)
    table = tables[0]
    assert max(table.column("max|closed-numeric|")) < 1e-10


def test_qchain_solve_kernel(benchmark):
    graph = petersen_graph()

    def kernel():
        chain = QChain(graph, alpha=0.5, k=2)
        return chain.stationary_numeric()

    mu = benchmark(kernel)
    assert abs(mu.sum() - 1.0) < 1e-9
