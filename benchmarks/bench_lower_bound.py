"""EXP-T221LB — tightness from the eigenvector-aligned worst case (Prop B.2)."""

from conftest import run_once
from repro.experiments.exp_lower_bound import run


def test_exp_t221lb_tables(benchmark, show):
    tables = run_once(benchmark, run, fast=True, seed=0)
    show(tables)
    (table,) = tables
    ratios = table.column("ratio")
    assert min(ratios) > 0.02  # bounded away from zero: Omega(.) is realised
