"""EXP-IRR — Var(F) on irregular graphs (future work, Section 6)."""

from conftest import run_once
from repro.experiments.exp_variance_irregular import run


def test_exp_irr_tables(benchmark, show):
    tables = run_once(benchmark, run, fast=True, seed=0)
    show(tables)
    (table,) = tables
    assert len(table.rows) == 6  # 3 graphs x 2 models
