"""EXP-T222 — Var(F) on regular graphs vs Theorem 2.2(2) / Prop 5.8.

The headline table: same Var(F) (within Monte-Carlo CIs) on the cycle,
torus, random regular graph and clique carrying the same initial values.
"""

from conftest import run_once
from repro.experiments.exp_variance_regular import run


def test_exp_t222_tables(benchmark, show):
    tables = run_once(benchmark, run, fast=True, seed=0)
    show(tables)
    structure = tables[0]
    assert all(structure.column("in_envelope"))
    variances = structure.column("Var_measured")
    # Structure independence: max/min across graph families stays O(1).
    assert max(variances) / min(variances) < 3.0
