"""EXP-F4 — regenerate Figure 4 (duality worked example, k = 2)."""

from conftest import run_once
from repro.experiments.exp_fig_duality import run_figure4


def test_exp_f4_tables(benchmark, show):
    tables = run_once(benchmark, run_figure4, fast=True, seed=0)
    show(tables)
    assert all(tables[0].column("match"))
