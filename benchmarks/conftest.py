"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one paper artefact (see DESIGN.md's
experiment index):

* the *timed* section benchmarks the experiment's computational kernel via
  pytest-benchmark (single round for the Monte-Carlo-heavy ones — the
  numbers of interest are the table rows, not nanosecond timings);
* the experiment's result tables are printed to the terminal with capture
  disabled, so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
  records the measured-vs-paper rows.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capfd):
    """Print result tables live, bypassing pytest's capture."""

    def _show(tables):
        with capfd.disabled():
            for table in tables:
                print()
                print(table.render())

    return _show


def run_once(benchmark, runner, **kwargs):
    """Benchmark ``runner`` with a single round (Monte-Carlo scale)."""
    return benchmark.pedantic(
        runner, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
