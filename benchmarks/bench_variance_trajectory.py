"""EXP-VT — exact Var(Avg(t)) trajectory vs Monte Carlo (duality pipeline)."""

from conftest import run_once
from repro.experiments.exp_variance_trajectory import run


def test_exp_vt_tables(benchmark, show):
    tables = run_once(benchmark, run, fast=True, seed=0)
    show(tables)
    for table in tables:
        ratios = table.column("mc/exact")
        assert all(0.8 < r < 1.25 for r in ratios)
