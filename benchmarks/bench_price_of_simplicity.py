"""EXP-PRICE — consensus-value spread: averaging vs gossip vs voter."""

from conftest import run_once
from repro.experiments.exp_price_of_simplicity import run


def test_exp_price_tables(benchmark, show):
    tables = run_once(benchmark, run, fast=True, seed=0)
    show(tables)
    (table,) = tables
    stds = dict(zip(table.column("protocol"), table.column("std_F")))
    # The ordering the paper's introduction predicts.
    assert stds["pairwise gossip"] < 1e-6
    assert stds["pairwise gossip"] < stds["NodeModel (paper)"] < stds["voter model"]
