"""EXP-F1 — regenerate Figure 1 (duality worked example, k = 1).

Also micro-benchmarks the duality coupling kernel (forward averaging run
+ reversed diffusion replay) since it is the primitive under every
duality experiment.
"""

import numpy as np

from conftest import run_once
from repro.dual.duality import run_coupled
from repro.experiments.exp_fig_duality import run_figure1
from repro.graphs.generators import random_regular_graph


def test_exp_f1_tables(benchmark, show):
    tables = run_once(benchmark, run_figure1, fast=True, seed=0)
    show(tables)
    figure = tables[0]
    assert all(figure.column("match"))


def test_duality_kernel_throughput(benchmark):
    graph = random_regular_graph(32, 4, seed=1)
    initial = np.random.default_rng(1).normal(size=32)

    def kernel():
        return run_coupled(graph, initial, alpha=0.5, k=1, steps=200, seed=2)

    trace = benchmark(kernel)
    assert trace.max_error < 1e-9
