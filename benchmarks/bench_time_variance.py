"""EXP-CE2 — any-time variance envelopes (Corollary E.2)."""

from conftest import run_once
from repro.experiments.exp_time_variance import run


def test_exp_ce2_tables(benchmark, show):
    tables = run_once(benchmark, run, fast=True, seed=0)
    show(tables)
    (table,) = tables
    assert all(table.column("ok"))
